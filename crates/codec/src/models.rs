//! Entropy-model bank shared by encoder and decoder.
//!
//! One [`Models`] instance is created per coded frame on each side;
//! because [`crate::entropy::AdaptiveModel`] adapts deterministically,
//! encoder and decoder stay in lockstep as long as they code the same
//! symbol sequence — which the bitstream syntax guarantees.

use crate::entropy::AdaptiveModel;

/// Number of transform-size classes (4, 8, 16, 32).
pub const TX_CLASSES: usize = 4;

/// Maps a transform size to its class index.
///
/// # Panics
///
/// Panics on sizes other than 4/8/16/32.
pub fn tx_class(n: usize) -> usize {
    match n {
        4 => 0,
        8 => 1,
        16 => 2,
        32 => 3,
        _ => panic!("unsupported transform size {n}"),
    }
}

/// All adaptive contexts used by the frame syntax.
#[derive(Debug, Clone)]
pub struct Models {
    /// Partition-split flags, one context per depth (64→32, 32→16).
    pub partition: AdaptiveModel,
    /// Inter-vs-intra flag.
    pub is_inter: AdaptiveModel,
    /// Intra mode (uint contexts).
    pub intra_mode: AdaptiveModel,
    /// Reference index (uint contexts).
    pub ref_idx: AdaptiveModel,
    /// Compound-prediction flag.
    pub compound: AdaptiveModel,
    /// Motion-vector X component (int contexts).
    pub mv_x: AdaptiveModel,
    /// Motion-vector Y component (int contexts).
    pub mv_y: AdaptiveModel,
    /// Transform-size split flag (use T/2 tiles instead of T), one
    /// context per tx class of the full-size transform.
    pub tx_split: AdaptiveModel,
    /// "Block has nonzero coefficients" flag per tx class.
    pub has_coeffs: AdaptiveModel,
    /// Last-nonzero-index (uint contexts) per tx class.
    pub last_nz: Vec<AdaptiveModel>,
    /// Coefficient magnitude (int contexts) per tx class.
    pub level: Vec<AdaptiveModel>,
}

impl Models {
    /// Creates a fresh model bank (all probabilities 1/2).
    pub fn new() -> Self {
        Models {
            partition: AdaptiveModel::new(2),
            is_inter: AdaptiveModel::new(1),
            intra_mode: AdaptiveModel::new(8),
            ref_idx: AdaptiveModel::new(8),
            compound: AdaptiveModel::new(1),
            mv_x: AdaptiveModel::new(8),
            mv_y: AdaptiveModel::new(8),
            tx_split: AdaptiveModel::new(TX_CLASSES),
            has_coeffs: AdaptiveModel::new(TX_CLASSES),
            last_nz: (0..TX_CLASSES).map(|_| AdaptiveModel::new(8)).collect(),
            level: (0..TX_CLASSES).map(|_| AdaptiveModel::new(8)).collect(),
        }
    }
}

impl Default for Models {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_class_mapping() {
        assert_eq!(tx_class(4), 0);
        assert_eq!(tx_class(32), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn tx_class_rejects_odd_sizes() {
        tx_class(12);
    }

    #[test]
    fn fresh_models_identical() {
        // Encoder and decoder construct Models::new() independently;
        // they must match exactly.
        let a = Models::new();
        let b = Models::new();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.level, b.level);
    }
}
