//! Top-level encode/decode API and the bitstream container.
//!
//! [`encode`] runs the full pipeline: optional first pass, GOP
//! planning, altref insertion, per-frame rate control, frame coding,
//! and container serialization. [`decode`] parses the container,
//! verifies per-frame checksums (the integrity checks §4.4's blast-
//! radius mitigation relies on), and reproduces the encoder's
//! reconstructions exactly.

use crate::config::{EncoderConfig, PassMode, RateControl};
use crate::frame_coder::{decode_frame, encode_frame, RefSlots};
use crate::rc::{first_pass, plan_frame_kinds, RateController};
use crate::stats::CodingStats;
use crate::tempfilter::temporal_filter_with_stats;
use crate::types::{CodecError, FrameKind, Profile, Qp};
use vcu_media::quality::psnr_y;
use vcu_media::{Frame, Video};
use vcu_telemetry::{Registry, Scope};

const MAGIC: &[u8; 4] = b"VCSM";
const VERSION: u8 = 1;
/// Size of the serialized container header in bytes.
const HEADER_LEN: usize = 18;

/// Metadata for one coded frame in the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodedFrameInfo {
    /// Frame kind.
    pub kind: FrameKind,
    /// Quantizer used.
    pub qp: Qp,
    /// Payload size in bytes (excluding per-frame container overhead).
    pub bytes: u32,
}

/// A complete encoded video.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Coding profile.
    pub profile: Profile,
    /// Luma width.
    pub width: u16,
    /// Luma height.
    pub height: u16,
    /// Frame rate of the displayable sequence.
    pub fps: f64,
    /// Serialized container bytes.
    pub bytes: Vec<u8>,
    /// Per-coded-frame metadata (includes hidden altref frames).
    pub frames: Vec<CodedFrameInfo>,
    /// Work metering for the encode.
    pub stats: CodingStats,
}

impl Encoded {
    /// Average bitrate of the displayable stream in bits/second.
    pub fn bitrate_bps(&self) -> f64 {
        let displayable = self
            .frames
            .iter()
            .filter(|f| f.kind.is_displayable())
            .count();
        if displayable == 0 {
            return 0.0;
        }
        let total_bits: u64 = self.frames.iter().map(|f| f.bytes as u64 * 8).sum();
        total_bits as f64 / (displayable as f64 / self.fps)
    }

    /// Total compressed size in bytes (container included).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }
}

/// Result of decoding: the video plus decode-side work metering.
#[derive(Debug, Clone)]
pub struct Decoded {
    /// Displayable frames.
    pub video: Video,
    /// Decode work metering.
    pub stats: CodingStats,
}

/// Serializes the fixed-size container header. Frame records follow it
/// directly, which is what lets chunk containers be spliced by
/// rewriting the header and concatenating everything past byte
/// [`HEADER_LEN`].
fn container_header(profile: Profile, w: u16, h: u16, fps: f32, count: u32) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN);
    bytes.extend_from_slice(MAGIC);
    bytes.push(VERSION);
    bytes.push(match profile {
        Profile::H264Sim => 0,
        Profile::Vp9Sim => 1,
    });
    bytes.extend_from_slice(&w.to_le_bytes());
    bytes.extend_from_slice(&h.to_le_bytes());
    bytes.extend_from_slice(&fps.to_le_bytes());
    bytes.extend_from_slice(&count.to_le_bytes());
    debug_assert_eq!(bytes.len(), HEADER_LEN);
    bytes
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    h
}

/// Encodes a video.
///
/// # Errors
///
/// Returns [`CodecError::InvalidConfig`] for invalid configurations.
pub fn encode(cfg: &EncoderConfig, video: &Video) -> Result<Encoded, CodecError> {
    encode_traced(cfg, video, &Registry::disabled())
}

/// Like [`encode`], additionally recording per-frame observability into
/// `telemetry`: payload bits, a cycles-per-macroblock proxy (work-unit
/// delta over the frame's macroblock count), and luma PSNR of the
/// reconstruction. All three land in histograms
/// (`codec.frame.{bits,cycles_per_mb,psnr_y}`) plus a `codec.frames`
/// counter. With a disabled registry this is exactly [`encode`] — the
/// PSNR computation is skipped, not just discarded.
///
/// # Errors
///
/// Returns [`CodecError::InvalidConfig`] for invalid configurations.
pub fn encode_traced(
    cfg: &EncoderConfig,
    video: &Video,
    telemetry: &Registry,
) -> Result<Encoded, CodecError> {
    cfg.validate()?;
    let n = video.frames.len();
    let (w, h) = (video.width(), video.height());
    if w > u16::MAX as usize || h > u16::MAX as usize {
        return Err(CodecError::InvalidConfig("dimensions exceed u16"));
    }

    // First pass: needed for bitrate two-pass modes and adaptive GOP.
    let adaptive_gop = match cfg.toolset {
        crate::config::Toolset::Software => true,
        crate::config::Toolset::Hardware { tuning } => tuning.level() >= 1,
    };
    let needs_fp = adaptive_gop
        || matches!(
            cfg.rc,
            RateControl::Bitrate { pass, .. } if pass.has_first_pass()
        );
    let fp_stats = if needs_fp {
        first_pass(video)
    } else {
        Vec::new()
    };

    let kinds = plan_frame_kinds(
        cfg,
        n,
        if adaptive_gop && !fp_stats.is_empty() {
            Some(&fp_stats)
        } else {
            None
        },
    );

    let pass = match cfg.rc {
        RateControl::ConstQp(_) => PassMode::TwoPassOffline,
        RateControl::Bitrate { pass, .. } => pass,
    };
    let mut rc = RateController::new(cfg, video.fps, fp_stats);

    let mut stats = CodingStats::new();
    let mut refs = RefSlots::new();
    let mut infos = Vec::new();
    let mut payloads: Vec<(FrameKind, Qp, Vec<u8>)> = Vec::new();
    let altref_active = cfg.altref_active();
    let mut since_altref = usize::MAX / 2;
    // Rolling mean of recent inter-frame payload sizes, used to reject
    // altrefs that cost more than they can recoup (unpredictable
    // content makes the filtered frame keyframe-expensive).
    let mut inter_bytes_mean: Option<f64> = None;

    for (i, &kind) in kinds.iter().enumerate() {
        if kind == FrameKind::Key {
            since_altref = usize::MAX / 2; // force altref right after key
        }

        // Altref insertion: a temporally filtered future frame, coded
        // hidden at a lower QP, refreshing the ALTREF slot.
        if altref_active && kind == FrameKind::Inter && since_altref >= cfg.altref_period {
            let center = (i + cfg.altref_period / 2).min(n - 1);
            let lookahead = pass.lookahead(i, n);
            if center > i && center - i <= lookahead {
                let window: Vec<&Frame> =
                    video.frames[i..=(center + 1).min(n - 1)].iter().collect();
                let (filtered, fstats) =
                    temporal_filter_with_stats(&window, center - i, &mut stats);
                // Gate 1: the filter must have found temporally
                // predictable content; otherwise the altref is just an
                // expensive copy of one source frame.
                if fstats.mean_weight >= 0.55 {
                    let aqp = rc.frame_qp(i, FrameKind::AltRef, n).offset(-4);
                    let (payload, recon) =
                        encode_frame(cfg, &filtered, FrameKind::AltRef, aqp, &refs, &mut stats);
                    // Gate 2: reject altrefs costing much more than the
                    // inter frames they would have to improve.
                    let affordable = inter_bytes_mean
                        .map(|m| (payload.len() as f64) <= m * 2.5)
                        .unwrap_or(true);
                    if affordable {
                        refs.apply_refresh(FrameKind::AltRef, &recon);
                        infos.push(CodedFrameInfo {
                            kind: FrameKind::AltRef,
                            qp: aqp,
                            bytes: payload.len() as u32,
                        });
                        payloads.push((FrameKind::AltRef, aqp, payload));
                        since_altref = 0;
                    } else {
                        stats.bits -= payload.len() as u64 * 8; // not emitted
                        since_altref = 0; // don't retry every frame
                    }
                } else {
                    since_altref = 0;
                }
            }
        }
        since_altref = since_altref.saturating_add(1);

        let base_qp = rc.frame_qp(i, kind, n);
        let qp = match kind {
            FrameKind::Key => base_qp.offset(cfg.toolset.keyframe_qp_boost()),
            FrameKind::Inter => base_qp.offset(cfg.toolset.inter_qp_offset()),
            FrameKind::AltRef => base_qp,
        };
        let work_before = stats.work_units();
        let (payload, recon) = encode_frame(cfg, &video.frames[i], kind, qp, &refs, &mut stats);
        if telemetry.is_enabled() {
            let mbs = (w.div_ceil(16) * h.div_ceil(16)) as f64;
            telemetry.counter_inc("codec.frames");
            telemetry.observe("codec.frame.bits", payload.len() as f64 * 8.0);
            telemetry.observe(
                "codec.frame.cycles_per_mb",
                (stats.work_units() - work_before) / mbs.max(1.0),
            );
            telemetry.observe("codec.frame.psnr_y", psnr_y(&video.frames[i], &recon));
        }
        refs.apply_refresh(kind, &recon);
        rc.update(payload.len() as u64 * 8);
        if kind == FrameKind::Inter {
            let b = payload.len() as f64;
            inter_bytes_mean = Some(match inter_bytes_mean {
                Some(m) => m * 0.7 + b * 0.3,
                None => b,
            });
        }
        infos.push(CodedFrameInfo {
            kind,
            qp,
            bytes: payload.len() as u32,
        });
        payloads.push((kind, qp, payload));
    }

    // Serialize container.
    let mut bytes = container_header(
        cfg.profile,
        w as u16,
        h as u16,
        video.fps as f32,
        payloads.len() as u32,
    );
    for (kind, qp, payload) in &payloads {
        bytes.push(match kind {
            FrameKind::Key => 0,
            FrameKind::Inter => 1,
            FrameKind::AltRef => 2,
        });
        bytes.push(qp.value());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    }

    Ok(Encoded {
        profile: cfg.profile,
        width: w as u16,
        height: h as u16,
        fps: video.fps,
        bytes,
        frames: infos,
        stats,
    })
}

/// Encodes several independent videos with one configuration on the
/// process-wide work-stealing pool ([`vcu_exec::pool`]), at most
/// `cfg.threads` of them concurrently.
///
/// Results come back in input order and each is byte-identical to a
/// sequential [`encode`] of that video, for every thread count —
/// workers share nothing, the per-video pipeline is deterministic, and
/// the pool returns index-ordered result slots no matter how
/// steal-heavy the schedule was.
///
/// # Errors
///
/// Returns the first [`CodecError`] (by input order) if any video fails
/// to encode.
///
/// # Panics
///
/// If an encode worker panics, every sibling video still encodes to
/// completion first (nothing aborts mid-batch), then the panic of the
/// lowest-index failed video is re-raised on the caller.
pub fn encode_batch(cfg: &EncoderConfig, videos: &[Video]) -> Result<Vec<Encoded>, CodecError> {
    encode_batch_with(cfg, videos, encode)
}

/// [`encode_batch`] over an injectable per-video encode function —
/// the seam tests use to exercise worker-panic handling with a
/// deliberately faulting kernel.
fn encode_batch_with(
    cfg: &EncoderConfig,
    videos: &[Video],
    enc: impl Fn(&EncoderConfig, &Video) -> Result<Encoded, CodecError> + Sync,
) -> Result<Vec<Encoded>, CodecError> {
    let enc = &enc;
    vcu_exec::pool()
        .run_batch(
            cfg.threads.max(1),
            videos.iter().map(|v| move || enc(cfg, v)).collect(),
        )
        .into_iter()
        .collect()
}

/// Chunk-parallel encoding: splits `video` into closed-GOP chunks of
/// `chunk_frames` frames, encodes each chunk independently on
/// `cfg.threads` worker threads, and splices the chunk containers back
/// into one stream (header rewrite + payload concatenation, stats
/// merged in chunk order).
///
/// Each chunk is encoded as its own short video, so it opens with a
/// keyframe and references nothing outside itself — the fleet-style
/// chunked transcode of §3, where independent chunks fan out across
/// VCUs. Because chunk boundaries depend only on `chunk_frames` and
/// splicing is ordered, the output is **byte-identical for every
/// `cfg.threads` value**; `threads` trades wall-clock for parallelism,
/// never output. More keyframes than whole-video [`encode`] is the
/// expected compression cost of chunk independence.
///
/// # Errors
///
/// Returns [`CodecError::InvalidConfig`] for invalid configurations or
/// `chunk_frames == 0`.
pub fn encode_parallel(
    cfg: &EncoderConfig,
    video: &Video,
    chunk_frames: usize,
) -> Result<Encoded, CodecError> {
    encode_parallel_traced(cfg, video, chunk_frames, &Registry::disabled())
}

/// Like [`encode_parallel`], additionally recording chunk-level
/// observability: a `codec.chunks` counter, per-chunk
/// `codec.chunk.encode` spans (media-time coordinates, scoped to
/// job = chunk index), and a `codec.chunk.bits` histogram.
///
/// Workers themselves run untraced and telemetry is recorded on the
/// calling thread in chunk order afterwards; nothing in the snapshot
/// mentions thread counts or worker identities, so same-seed runs
/// produce byte-identical telemetry snapshots for **every**
/// `cfg.threads` value, not just across schedules at one value.
/// (Scheduler-side metering — steals, queue depths, busy time — is
/// deliberately nondeterministic and lives behind
/// `vcu_exec::Pool::record_telemetry` instead.)
///
/// # Errors
///
/// Returns [`CodecError::InvalidConfig`] for invalid configurations or
/// `chunk_frames == 0`.
pub fn encode_parallel_traced(
    cfg: &EncoderConfig,
    video: &Video,
    chunk_frames: usize,
    telemetry: &Registry,
) -> Result<Encoded, CodecError> {
    cfg.validate()?;
    if chunk_frames == 0 {
        return Err(CodecError::InvalidConfig("chunk_frames must be at least 1"));
    }
    let n = video.frames.len();
    if n == 0 {
        return encode_traced(cfg, video, telemetry);
    }
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk_frames)
        .map(|s| (s, (s + chunk_frames).min(n)))
        .collect();
    let chunks: Vec<Video> = ranges
        .iter()
        .map(|&(a, b)| Video::new(video.frames[a..b].to_vec(), video.fps))
        .collect();
    let encoded = encode_batch(cfg, &chunks)?;

    // Splice in chunk order: one rewritten header, then every chunk's
    // frame records verbatim. Frame checksums are per-payload, so they
    // survive the concatenation untouched.
    let coded_frames: usize = encoded.iter().map(|c| c.frames.len()).sum();
    let mut bytes = container_header(
        cfg.profile,
        video.width() as u16,
        video.height() as u16,
        video.fps as f32,
        coded_frames as u32,
    );
    let mut infos = Vec::with_capacity(coded_frames);
    let mut stats = CodingStats::new();
    for c in &encoded {
        bytes.extend_from_slice(&c.bytes[HEADER_LEN..]);
        infos.extend_from_slice(&c.frames);
        stats += c.stats;
    }

    if telemetry.is_enabled() {
        for (i, (c, &(a, b))) in encoded.iter().zip(&ranges).enumerate() {
            let chunk_bits: f64 = c.frames.iter().map(|f| f.bytes as f64 * 8.0).sum();
            telemetry.counter_inc("codec.chunks");
            telemetry.observe("codec.chunk.bits", chunk_bits);
            telemetry.span(
                "codec.chunk.encode",
                Scope::job(i as u64),
                a as f64 / video.fps,
                b as f64 / video.fps,
                chunk_bits,
            );
        }
    }

    Ok(Encoded {
        profile: cfg.profile,
        width: video.width() as u16,
        height: video.height() as u16,
        fps: video.fps,
        bytes,
        frames: infos,
        stats,
    })
}

/// Decodes a container produced by [`encode`].
///
/// # Errors
///
/// Returns [`CodecError`] on malformed headers, checksum mismatches, or
/// corrupt frame payloads.
pub fn decode(bytes: &[u8]) -> Result<Decoded, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC.as_slice() {
        return Err(CodecError::CorruptBitstream("bad magic"));
    }
    if r.u8()? != VERSION {
        return Err(CodecError::Unsupported("unknown container version"));
    }
    let profile = match r.u8()? {
        0 => Profile::H264Sim,
        1 => Profile::Vp9Sim,
        _ => return Err(CodecError::Unsupported("unknown profile")),
    };
    let w = r.u16()? as usize;
    let h = r.u16()? as usize;
    let fps = r.f32()? as f64;
    let coded_frames = r.u32()? as usize;
    if w == 0 || h == 0 || !w.is_multiple_of(2) || !h.is_multiple_of(2) {
        return Err(CodecError::CorruptBitstream("invalid dimensions"));
    }
    if !(fps.is_finite() && fps > 0.0) {
        return Err(CodecError::CorruptBitstream("invalid fps"));
    }

    let mut stats = CodingStats::new();
    let mut refs = RefSlots::new();
    let mut frames = Vec::new();
    for _ in 0..coded_frames {
        let kind = match r.u8()? {
            0 => FrameKind::Key,
            1 => FrameKind::Inter,
            2 => FrameKind::AltRef,
            _ => return Err(CodecError::CorruptBitstream("unknown frame kind")),
        };
        let qp = Qp::new(r.u8()?);
        let len = r.u32()? as usize;
        let payload = r.take(len)?;
        let checksum = { r.u32()? };
        if fnv1a(payload) != checksum {
            return Err(CodecError::CorruptBitstream("frame checksum mismatch"));
        }
        let recon = decode_frame(profile, payload, kind, qp, &refs, w, h, &mut stats)?;
        refs.apply_refresh(kind, &recon);
        if kind.is_displayable() {
            frames.push(recon);
        }
    }
    if frames.is_empty() {
        return Err(CodecError::CorruptBitstream("no displayable frames"));
    }
    Ok(Decoded {
        video: Video::new(frames, fps),
        stats,
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::CorruptBitstream("container truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PassMode, Toolset, TuningLevel};
    use vcu_media::quality::psnr_y_video;
    use vcu_media::synth::{ContentClass, SynthSpec};
    use vcu_media::Resolution;

    fn clip(frames: usize, content: ContentClass) -> Video {
        SynthSpec::new(Resolution::R144, frames, content, 21).generate()
    }

    #[test]
    fn encode_decode_round_trip_h264() {
        let v = clip(6, ContentClass::talking_head());
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(28));
        let e = encode(&cfg, &v).unwrap();
        let d = decode(&e.bytes).unwrap();
        assert_eq!(d.video.frames.len(), 6);
        let p = psnr_y_video(&v, &d.video);
        assert!(p > 28.0, "qp28 psnr too low: {p}");
    }

    #[test]
    fn encode_decode_round_trip_vp9_with_altref() {
        let v = clip(10, ContentClass::talking_head());
        let mut cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(28));
        cfg.altref_period = 4;
        let e = encode(&cfg, &v).unwrap();
        // Altref frames are hidden: decode returns exactly 10 frames.
        assert!(e.frames.iter().any(|f| f.kind == FrameKind::AltRef));
        let d = decode(&e.bytes).unwrap();
        assert_eq!(d.video.frames.len(), 10);
    }

    #[test]
    fn vp9_outcompresses_h264_at_iso_quality() {
        // Core Fig. 7 relationship: at matched QP the VP9-like profile
        // should spend fewer bits for comparable PSNR on predictable
        // content (bigger blocks + more refs + altref).
        let v = clip(12, ContentClass::ugc());
        let h = encode(&EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30)), &v).unwrap();
        let g = encode(&EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)), &v).unwrap();
        let dh = decode(&h.bytes).unwrap();
        let dg = decode(&g.bytes).unwrap();
        let ph = psnr_y_video(&v, &dh.video);
        let pg = psnr_y_video(&v, &dg.video);
        let bits_h = h.bitrate_bps();
        let bits_g = g.bitrate_bps();
        // Accept the win in either axis; strict BD-rate is tested in
        // the integration suite.
        assert!(
            (bits_g < bits_h && pg > ph - 1.0) || (pg > ph && bits_g < bits_h * 1.1),
            "vp9 {bits_g:.0}bps/{pg:.2}dB vs h264 {bits_h:.0}bps/{ph:.2}dB"
        );
    }

    #[test]
    fn bitrate_mode_hits_target() {
        let v = clip(24, ContentClass::ugc());
        let target = 600_000u64;
        let cfg = EncoderConfig::bitrate(Profile::H264Sim, target, PassMode::TwoPassOffline);
        let e = encode(&cfg, &v).unwrap();
        let achieved = e.bitrate_bps();
        let err = (achieved - target as f64).abs() / target as f64;
        assert!(
            err < 0.35,
            "bitrate {achieved:.0} vs target {target} (err {err:.2})"
        );
    }

    #[test]
    fn hardware_launch_worse_than_software() {
        let v = clip(10, ContentClass::ugc());
        let qp = Qp::new(32);
        let sw = encode(&EncoderConfig::const_qp(Profile::H264Sim, qp), &v).unwrap();
        let hw = encode(
            &EncoderConfig::const_qp(Profile::H264Sim, qp).with_hardware(TuningLevel::LAUNCH),
            &v,
        )
        .unwrap();
        let dsw = decode(&sw.bytes).unwrap();
        let dhw = decode(&hw.bytes).unwrap();
        let psw = psnr_y_video(&v, &dsw.video);
        let phw = psnr_y_video(&v, &dhw.video);
        // At matched QP the hardware toolset should not beat software
        // on both axes simultaneously.
        let sw_rate = sw.bitrate_bps();
        let hw_rate = hw.bitrate_bps();
        assert!(
            !(hw_rate < sw_rate && phw > psw),
            "launch hardware dominates software: {hw_rate:.0}bps/{phw:.2}dB vs {sw_rate:.0}bps/{psw:.2}dB"
        );
    }

    #[test]
    fn container_corruption_detected() {
        let v = clip(3, ContentClass::talking_head());
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        let mut e = encode(&cfg, &v).unwrap();
        let mid = e.bytes.len() / 2;
        e.bytes[mid] ^= 0xFF;
        assert!(decode(&e.bytes).is_err(), "corruption must be detected");
    }

    #[test]
    fn truncated_container_detected() {
        let v = clip(2, ContentClass::talking_head());
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        let e = encode(&cfg, &v).unwrap();
        let cut = &e.bytes[..e.bytes.len() - 10];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decode(b"NOPE-not-a-stream"),
            Err(CodecError::CorruptBitstream(_))
        ));
    }

    #[test]
    fn encoder_stats_are_populated() {
        let v = clip(4, ContentClass::ugc());
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30));
        let e = encode(&cfg, &v).unwrap();
        assert_eq!(e.stats.frames as usize, e.frames.len());
        assert!(e.stats.sad_pixels > 0);
        assert!(e.stats.transform_pixels > 0);
        assert!(e.stats.bits > 0);
        assert!(e.stats.work_units() > 0.0);
        // Decode does strictly less work than encode.
        let d = decode(&e.bytes).unwrap();
        assert!(d.stats.work_units() < e.stats.work_units() / 2.0);
    }

    #[test]
    fn traced_encode_records_per_frame_metrics() {
        let v = clip(6, ContentClass::talking_head());
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(28));
        let reg = Registry::new();
        let traced = encode_traced(&cfg, &v, &reg).unwrap();
        // Observation must not perturb the bitstream.
        let plain = encode(&cfg, &v).unwrap();
        assert_eq!(traced.bytes, plain.bytes);
        // Six displayable frames pass through the main coding loop.
        assert_eq!(reg.counter("codec.frames"), 6);
        let bits = reg.histogram("codec.frame.bits").unwrap();
        assert_eq!(bits.count, 6);
        assert!(bits.sum > 0.0);
        let cycles = reg.histogram("codec.frame.cycles_per_mb").unwrap();
        assert!(cycles.min > 0.0, "every frame does some work");
        let psnr = reg.histogram("codec.frame.psnr_y").unwrap();
        assert!(psnr.min > 20.0, "qp28 recon quality: {}", psnr.min);
    }

    #[test]
    fn parallel_encode_is_thread_count_invariant() {
        let v = clip(10, ContentClass::ugc());
        let base = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30));
        let seq = encode_parallel(&base.with_threads(1), &v, 4).unwrap();
        for threads in [2usize, 4] {
            let par = encode_parallel(&base.with_threads(threads), &v, 4).unwrap();
            assert_eq!(
                seq.bytes, par.bytes,
                "threads={threads} changed the bitstream"
            );
            assert_eq!(
                seq.stats, par.stats,
                "threads={threads} changed merged stats"
            );
            assert_eq!(seq.frames, par.frames);
        }
    }

    #[test]
    fn parallel_encode_decodes_to_all_frames() {
        let v = clip(11, ContentClass::talking_head());
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(28)).with_threads(3);
        let e = encode_parallel(&cfg, &v, 4).unwrap();
        let d = decode(&e.bytes).unwrap();
        assert_eq!(d.video.frames.len(), 11);
        // Three chunks (4+4+3): each opens with its own keyframe.
        assert_eq!(
            e.frames.iter().filter(|f| f.kind == FrameKind::Key).count(),
            3
        );
        let p = psnr_y_video(&v, &d.video);
        assert!(p > 28.0, "chunked qp28 psnr too low: {p}");
    }

    #[test]
    fn parallel_encode_merges_stats_and_sizes() {
        // Splice bookkeeping: merged stats and container size must equal
        // the per-chunk sums (minus the extra chunk headers).
        let v = clip(8, ContentClass::ugc());
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(32)).with_threads(2);
        let chunks: Vec<Video> = [(0usize, 4usize), (4, 8)]
            .iter()
            .map(|&(a, b)| Video::new(v.frames[a..b].to_vec(), v.fps))
            .collect();
        let per = encode_batch(&cfg, &chunks).unwrap();
        let whole = encode_parallel(&cfg, &v, 4).unwrap();
        let mut sum = CodingStats::new();
        for c in &per {
            sum += c.stats;
        }
        assert_eq!(whole.stats, sum);
        let per_bytes: usize = per.iter().map(|c| c.bytes.len() - HEADER_LEN).sum();
        assert_eq!(whole.bytes.len(), HEADER_LEN + per_bytes);
    }

    #[test]
    fn batch_worker_panic_joins_all_siblings_then_propagates_lowest_index() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A panicking encode kernel (injected via the same seam
        // encode_batch uses) must not abort the batch mid-flight:
        // every sibling video still encodes, and only then does the
        // panic of the lowest-index failing video reach the caller.
        let videos: Vec<Video> = (0..6).map(|_| clip(3, ContentClass::ugc())).collect();
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)).with_threads(4);
        let completed = AtomicUsize::new(0);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            encode_batch_with(&cfg, &videos, |cfg, v| {
                if std::ptr::eq(v, &videos[1]) {
                    panic!("kernel fault on video 1");
                }
                if std::ptr::eq(v, &videos[4]) {
                    panic!("kernel fault on video 4");
                }
                let r = encode(cfg, v);
                completed.fetch_add(1, Ordering::SeqCst);
                r
            })
        }))
        .expect_err("a worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload should be the kernel's message");
        assert_eq!(
            msg, "kernel fault on video 1",
            "the lowest-index panic wins, not whichever worker lost the race"
        );
        assert_eq!(
            completed.load(Ordering::SeqCst),
            4,
            "all non-panicking siblings must run to completion first"
        );
    }

    #[test]
    fn parallel_encode_rejects_zero_chunk_frames() {
        let v = clip(2, ContentClass::talking_head());
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        assert!(matches!(
            encode_parallel(&cfg, &v, 0),
            Err(CodecError::InvalidConfig(_))
        ));
    }

    #[test]
    fn traced_parallel_encode_records_chunk_spans() {
        let v = clip(9, ContentClass::talking_head());
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30)).with_threads(2);
        let reg = Registry::new();
        let traced = encode_parallel_traced(&cfg, &v, 3, &reg).unwrap();
        let plain = encode_parallel(&cfg, &v, 3).unwrap();
        assert_eq!(traced.bytes, plain.bytes, "tracing must not perturb output");
        assert_eq!(reg.counter("codec.chunks"), 3);
        // The snapshot must stay thread-count-invariant, so nothing in
        // it may mention thread counts or worker identities.
        assert_eq!(reg.gauge("codec.encode.threads"), None);
        let spans = reg.events_named("codec.chunk.encode");
        assert_eq!(spans.len(), 3);
        // Spans carry media-time coordinates in chunk order.
        assert_eq!(spans[0].start_s, 0.0);
        assert!((spans[2].end_s - 9.0 / v.fps).abs() < 1e-9);
        let bits = reg.histogram("codec.chunk.bits").unwrap();
        assert_eq!(bits.count, 3);
        assert!(bits.sum > 0.0);
    }

    #[test]
    fn one_pass_low_latency_produces_no_altref() {
        let v = clip(10, ContentClass::talking_head());
        let cfg = EncoderConfig::bitrate(Profile::Vp9Sim, 500_000, PassMode::OnePassLowLatency);
        let e = encode(&cfg, &v).unwrap();
        assert!(e.frames.iter().all(|f| f.kind != FrameKind::AltRef));
    }

    #[test]
    fn software_toolset_search_params_used() {
        // Software should do more search work per pixel than hardware.
        let v = clip(6, ContentClass::high_motion());
        let qp = Qp::new(30);
        let sw = encode(&EncoderConfig::const_qp(Profile::H264Sim, qp), &v).unwrap();
        let hw = encode(
            &EncoderConfig::const_qp(Profile::H264Sim, qp).with_hardware(TuningLevel::MATURE),
            &v,
        )
        .unwrap();
        assert!(sw.stats.sad_pixels > hw.stats.sad_pixels);
        assert!(matches!(
            EncoderConfig::const_qp(Profile::H264Sim, qp).toolset,
            Toolset::Software
        ));
    }
}

#[cfg(test)]
mod lagged_tests {
    use super::*;
    use crate::config::PassMode;
    use vcu_media::synth::{ContentClass, SynthSpec};
    use vcu_media::Resolution;

    #[test]
    fn lagged_two_pass_allows_bounded_altrefs() {
        let v = SynthSpec::new(Resolution::R144, 20, ContentClass::talking_head(), 6).generate();
        let mut cfg = EncoderConfig::bitrate(Profile::Vp9Sim, 700_000, PassMode::TwoPassLagged(12));
        cfg.altref_period = 8;
        let e = encode(&cfg, &v).unwrap();
        // A 12-frame lag window covers the altref lookahead (period/2),
        // so altrefs appear; decode still yields exactly 20 frames.
        assert!(
            e.frames.iter().any(|f| f.kind == FrameKind::AltRef),
            "lagged mode should produce altrefs"
        );
        let d = decode(&e.bytes).unwrap();
        assert_eq!(d.video.frames.len(), 20);
    }

    #[test]
    fn zero_lookahead_suppresses_altrefs() {
        let v = SynthSpec::new(Resolution::R144, 16, ContentClass::talking_head(), 6).generate();
        let mut cfg = EncoderConfig::bitrate(Profile::Vp9Sim, 700_000, PassMode::TwoPassLowLatency);
        cfg.altref_period = 8;
        let e = encode(&cfg, &v).unwrap();
        assert!(
            e.frames.iter().all(|f| f.kind != FrameKind::AltRef),
            "zero lookahead cannot reach any altref center"
        );
    }

    #[test]
    fn decoder_rejects_zero_dimension_header() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"VCSM");
        bytes.push(1);
        bytes.push(0);
        bytes.extend_from_slice(&0u16.to_le_bytes()); // w = 0
        bytes.extend_from_slice(&64u16.to_le_bytes());
        bytes.extend_from_slice(&30.0f32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn decoder_rejects_nonsense_fps() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"VCSM");
        bytes.push(1);
        bytes.push(0);
        bytes.extend_from_slice(&64u16.to_le_bytes());
        bytes.extend_from_slice(&64u16.to_le_bytes());
        bytes.extend_from_slice(&f32::NAN.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }
}
