//! Encoder configuration: profiles, toolsets, rate-control modes.
//!
//! The *toolset* axis models the paper's hardware/software quality gap
//! (Fig. 7: VCU H.264 launched ~11.5% worse BD-rate than libx264) and
//! the post-deployment tuning story (Fig. 10: rate-control iteration on
//! the host closed that gap over ~16 months). `Toolset::Software` is
//! the libx264/libvpx stand-in; `Toolset::Hardware { tuning }` is the
//! VCU with a maturity level that unlocks encoder features the way
//! Google's "launch-and-iterate" userspace rate-control updates did.

use crate::motion::SearchParams;
use crate::types::{CodecError, Profile, Qp};

/// Hardware rate-control/tooling maturity, `0..=6`.
///
/// Level 0 is launch silicon with conservative firmware defaults; each
/// level enables one post-deployment optimization called out in §4.3
/// ("improved group-of-pictures structure selection, better use of
/// hardware statistics, introduction of additional reference frames,
/// and importing rate control ideas from the equivalent software
/// encoders").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TuningLevel(u8);

impl TuningLevel {
    /// Launch-day tuning.
    pub const LAUNCH: TuningLevel = TuningLevel(0);
    /// Fully tuned (months of production iteration).
    pub const MATURE: TuningLevel = TuningLevel(6);

    /// Creates a tuning level, clamped to `0..=6`.
    pub fn new(level: u8) -> Self {
        TuningLevel(level.min(6))
    }

    /// Raw level.
    pub fn level(self) -> u8 {
        self.0
    }

    /// Keyframe QP offset — launch rate control *starves* keyframes
    /// (positive offset), degrading every frame predicted from them;
    /// GOP-structure tuning removes the misallocation.
    pub(crate) fn keyframe_qp_boost(self) -> i32 {
        match self.0 {
            0 => 2,
            1 => 1,
            _ => 0,
        }
    }

    /// Whether altref frames are produced (level 2+, VP9 only).
    pub(crate) fn altref_enabled(self) -> bool {
        self.0 >= 2
    }

    /// Quantizer dead-zone (rounding bias). Launch firmware rounds to
    /// nearest (0.5), which is *not* RD-optimal; tuning tightens the
    /// dead zone towards the software encoders' ~0.38.
    pub(crate) fn deadzone(self) -> f64 {
        0.50 - 0.02 * self.0 as f64
    }

    /// Whether the greedy trellis-like level optimization runs
    /// (imported from the software encoders at high maturity).
    pub(crate) fn trellis(self) -> bool {
        self.0 >= 5
    }

    /// Inter-frame QP offset relative to the base QP.
    pub(crate) fn inter_qp_offset(self) -> i32 {
        0
    }

    /// Whether mode decisions rank candidates by SATD (transform-domain
    /// cost, a better rate proxy) instead of plain SAD — "better use of
    /// hardware statistics" arrives with tuning (§4.3).
    pub(crate) fn satd_ranking(self) -> bool {
        self.0 >= 3
    }

    /// RDO Lagrange-multiplier miscalibration factor. Launch firmware
    /// shipped with a lambda tuned on pre-silicon models; production
    /// tuning ("importing rate control ideas from the equivalent
    /// software encoders", §4.3) converges it to 1.0.
    pub(crate) fn lambda_scale(self) -> f64 {
        match self.0 {
            0 => 1.6,
            1 => 1.4,
            2 => 1.25,
            3 => 1.15,
            4 => 1.05,
            _ => 1.0,
        }
    }
}

/// Which encoder implementation style is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Toolset {
    /// CPU reference encoder (libx264/libvpx stand-in): exhaustive
    /// refinement, trellis quantization, best-known defaults.
    Software,
    /// VCU-style hardware encoder at a given tuning maturity.
    Hardware {
        /// Post-deployment rate-control maturity.
        tuning: TuningLevel,
    },
}

impl Toolset {
    /// Search parameters for this toolset.
    pub fn search_params(self) -> SearchParams {
        match self {
            Toolset::Software => SearchParams::software(),
            Toolset::Hardware { .. } => SearchParams::hardware(),
        }
    }

    /// Quantizer dead-zone.
    pub fn deadzone(self) -> f64 {
        match self {
            Toolset::Software => 0.38,
            Toolset::Hardware { tuning } => tuning.deadzone(),
        }
    }

    /// Whether trellis-like level optimization is applied.
    pub fn trellis(self) -> bool {
        match self {
            Toolset::Software => true,
            Toolset::Hardware { tuning } => tuning.trellis(),
        }
    }

    /// Keyframe QP boost.
    pub fn keyframe_qp_boost(self) -> i32 {
        match self {
            Toolset::Software => 0,
            Toolset::Hardware { tuning } => tuning.keyframe_qp_boost(),
        }
    }

    /// Whether mode decisions use SATD candidate ranking.
    pub fn satd_ranking(self) -> bool {
        match self {
            Toolset::Software => true,
            Toolset::Hardware { tuning } => tuning.satd_ranking(),
        }
    }

    /// RDO lambda scale (1.0 = well calibrated).
    pub fn lambda_scale(self) -> f64 {
        match self {
            Toolset::Software => 1.0,
            Toolset::Hardware { tuning } => tuning.lambda_scale(),
        }
    }

    /// Inter-frame QP offset.
    pub fn inter_qp_offset(self) -> i32 {
        match self {
            Toolset::Software => 0,
            Toolset::Hardware { tuning } => tuning.inter_qp_offset(),
        }
    }

    /// Whether altref production is allowed (profile permitting).
    pub fn altref_enabled(self) -> bool {
        match self {
            Toolset::Software => true,
            Toolset::Hardware { tuning } => tuning.altref_enabled(),
        }
    }
}

/// Pass structure / latency mode (paper §2.1's four encoding regimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassMode {
    /// One pass, frame-by-frame: videoconferencing / cloud gaming.
    OnePassLowLatency,
    /// Two passes but statistics only from current and prior frames.
    TwoPassLowLatency,
    /// Two-pass with a bounded future window of first-pass statistics
    /// (live streams).
    TwoPassLagged(usize),
    /// Two-pass over the entire video (upload / archival; best quality).
    TwoPassOffline,
}

impl PassMode {
    /// Frames of future statistics available at frame `i` of `n`.
    pub fn lookahead(self, i: usize, n: usize) -> usize {
        match self {
            PassMode::OnePassLowLatency | PassMode::TwoPassLowLatency => 0,
            PassMode::TwoPassLagged(w) => w.min(n - i - 1),
            PassMode::TwoPassOffline => n - i - 1,
        }
    }

    /// Whether a first pass runs at all.
    pub fn has_first_pass(self) -> bool {
        !matches!(self, PassMode::OnePassLowLatency)
    }
}

/// Rate-control mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateControl {
    /// Fixed quantizer (used for RD-curve sweeps).
    ConstQp(Qp),
    /// Target average bitrate in bits/second.
    Bitrate {
        /// Target bits per second.
        bps: u64,
        /// Pass structure.
        pass: PassMode,
    },
}

/// Full encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Coding profile (H.264-like or VP9-like).
    pub profile: Profile,
    /// Hardware or software toolset.
    pub toolset: Toolset,
    /// Rate control.
    pub rc: RateControl,
    /// Maximum keyframe interval in frames.
    pub keyframe_interval: usize,
    /// Frames between altref insertions (0 disables; only effective
    /// for profiles/toolsets that support altref).
    pub altref_period: usize,
    /// Worker threads for chunk-parallel encoding (see
    /// `encode_parallel`). `1` encodes chunks sequentially; the output
    /// bitstream is byte-identical for every thread count.
    pub threads: usize,
}

impl EncoderConfig {
    /// A sensible default configuration for `profile` at constant QP.
    pub fn const_qp(profile: Profile, qp: Qp) -> Self {
        EncoderConfig {
            profile,
            toolset: Toolset::Software,
            rc: RateControl::ConstQp(qp),
            keyframe_interval: 150,
            altref_period: 16,
            threads: 1,
        }
    }

    /// A bitrate-targeted configuration.
    pub fn bitrate(profile: Profile, bps: u64, pass: PassMode) -> Self {
        EncoderConfig {
            profile,
            toolset: Toolset::Software,
            rc: RateControl::Bitrate { bps, pass },
            keyframe_interval: 150,
            altref_period: 16,
            threads: 1,
        }
    }

    /// Switches to the hardware toolset at the given tuning level.
    pub fn with_hardware(mut self, tuning: TuningLevel) -> Self {
        self.toolset = Toolset::Hardware { tuning };
        self
    }

    /// Sets the worker-thread count for chunk-parallel encoding
    /// (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] for zero keyframe interval
    /// or zero-bitrate targets.
    pub fn validate(&self) -> Result<(), CodecError> {
        if self.keyframe_interval == 0 {
            return Err(CodecError::InvalidConfig("keyframe interval must be > 0"));
        }
        if let RateControl::Bitrate { bps, .. } = self.rc {
            if bps == 0 {
                return Err(CodecError::InvalidConfig("bitrate target must be > 0"));
            }
        }
        Ok(())
    }

    /// Whether this configuration produces altref frames.
    pub fn altref_active(&self) -> bool {
        self.profile.supports_altref()
            && self.toolset.altref_enabled()
            && self.altref_period > 0
            && match self.rc {
                // Altrefs need future frames: not in one-pass low latency.
                RateControl::Bitrate {
                    pass: PassMode::OnePassLowLatency,
                    ..
                } => false,
                _ => true,
            }
    }
}

/// Reads the `VCU_THREADS` environment variable: the fleet-style knob
/// for chunk-parallel encoding. Unset, empty, unparsable, or zero all
/// fall back to 1 (sequential).
///
/// Re-exported from [`vcu_exec::env_threads`], the executor that
/// actually honors the knob — kept here so codec callers keep a local
/// name for it.
pub fn env_threads() -> usize {
    vcu_exec::env_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_progression_is_monotone() {
        // Each knob should move towards the software value as level rises.
        let mut prev_dz = 1.0;
        for l in 0..=6 {
            let t = TuningLevel::new(l);
            assert!(t.deadzone() <= prev_dz);
            prev_dz = t.deadzone();
        }
        assert!(TuningLevel::MATURE.deadzone() >= Toolset::Software.deadzone() - 1e-9);
        assert!(TuningLevel::LAUNCH.keyframe_qp_boost() > TuningLevel::MATURE.keyframe_qp_boost());
        assert!(!TuningLevel::LAUNCH.satd_ranking());
        assert!(TuningLevel::MATURE.satd_ranking());
        assert!(!TuningLevel::LAUNCH.altref_enabled());
        assert!(TuningLevel::MATURE.altref_enabled());
        assert!(TuningLevel::MATURE.trellis());
    }

    #[test]
    fn tuning_clamps() {
        assert_eq!(TuningLevel::new(99).level(), 6);
    }

    #[test]
    fn lookahead_per_mode() {
        assert_eq!(PassMode::OnePassLowLatency.lookahead(0, 100), 0);
        assert_eq!(PassMode::TwoPassLagged(5).lookahead(0, 100), 5);
        assert_eq!(PassMode::TwoPassLagged(5).lookahead(97, 100), 2);
        assert_eq!(PassMode::TwoPassOffline.lookahead(10, 100), 89);
    }

    #[test]
    fn validation() {
        let mut c = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30));
        assert!(c.validate().is_ok());
        c.keyframe_interval = 0;
        assert!(c.validate().is_err());
        let b = EncoderConfig::bitrate(Profile::H264Sim, 0, PassMode::TwoPassOffline);
        assert!(b.validate().is_err());
    }

    #[test]
    fn altref_requires_everything() {
        // H264 profile: never.
        let h = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        assert!(!h.altref_active());
        // VP9 software: yes.
        let v = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30));
        assert!(v.altref_active());
        // VP9 hardware at launch: no (tuning gate).
        let hw = v.with_hardware(TuningLevel::LAUNCH);
        assert!(!hw.altref_active());
        // VP9 hardware mature: yes.
        let hw2 = v.with_hardware(TuningLevel::MATURE);
        assert!(hw2.altref_active());
        // One-pass low latency: no future frames, no altref.
        let ll = EncoderConfig::bitrate(Profile::Vp9Sim, 1_000_000, PassMode::OnePassLowLatency);
        assert!(!ll.altref_active());
    }
}
