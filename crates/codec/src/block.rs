//! Block/tile coding helpers shared by encoder and decoder.
//!
//! Residual tiles are transformed, quantized and entropy-coded here;
//! both sides call the same dequantize→inverse→add reconstruction path,
//! which is what makes encoder reconstruction and decoder output
//! bit-exact.

use crate::entropy::{read_int, read_uint, write_int, write_uint, BoolDecoder, BoolEncoder};
use crate::models::{tx_class, Models};
use crate::quant::{dequantize, optimize_levels, quantize};
use crate::stats::CodingStats;
use crate::transform::{forward_with, inverse_with, zigzag, TxScratch};
use crate::types::Qp;

/// Reusable buffers for tile encode/decode so the per-tile hot path
/// performs no heap allocation. One instance lives in the frame-level
/// scratch arena; buffers grow to the largest tile seen and are reused.
///
/// After [`encode_tile`]/[`decode_tile`] return, `recon` holds the
/// `tw x th` reconstructed residual.
#[derive(Debug, Default)]
pub(crate) struct TileScratch {
    padded: Vec<i16>,
    coeffs: Vec<f64>,
    levels: Vec<i32>,
    spatial: Vec<i16>,
    tx: TxScratch,
    /// Reconstructed residual of the last coded tile (`tw x th`).
    pub(crate) recon: Vec<i16>,
}

/// Iterates tiles of granularity `t` covering a `bw x bh` block,
/// calling `f(tx, ty, tw, th)` with tile-local offsets and actual
/// (possibly partial) tile dimensions.
pub(crate) fn for_each_tile(
    bw: usize,
    bh: usize,
    t: usize,
    mut f: impl FnMut(usize, usize, usize, usize),
) {
    let mut ty = 0;
    while ty < bh {
        let th = t.min(bh - ty);
        let mut tx = 0;
        while tx < bw {
            let tw = t.min(bw - tx);
            f(tx, ty, tw, th);
            tx += t;
        }
        ty += t;
    }
}

/// Encodes one residual tile; the reconstruction lands in `ts.recon`.
///
/// `residual` is the `tw x th` spatial-domain residual (row-major),
/// which is zero-padded to the full `t x t` transform internally for
/// partial tiles at frame edges. The reconstruction is `tw x th`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_tile(
    enc: &mut BoolEncoder,
    models: &mut Models,
    residual: &[i16],
    tw: usize,
    th: usize,
    t: usize,
    qp: Qp,
    deadzone: f64,
    trellis: bool,
    stats: &mut CodingStats,
    ts: &mut TileScratch,
) {
    debug_assert_eq!(residual.len(), tw * th);
    let n = t * t;
    let TileScratch {
        padded,
        coeffs,
        levels,
        spatial,
        tx,
        recon,
    } = ts;
    // Pad to full transform size.
    padded.clear();
    padded.resize(n, 0);
    for y in 0..th {
        padded[y * t..y * t + tw].copy_from_slice(&residual[y * tw..(y + 1) * tw]);
    }
    coeffs.resize(n, 0.0);
    forward_with(padded, t, &mut coeffs[..n], tx);
    stats.transform_pixels += n as u64;

    levels.resize(n, 0);
    quantize(&coeffs[..n], qp, deadzone, &mut levels[..n]);
    if trellis {
        optimize_levels(&coeffs[..n], qp, qp.lambda() * 0.15, &mut levels[..n]);
    }

    // Zigzag order, scanned in place (no gather buffer).
    let zz = zigzag(t);
    let cls = tx_class(t);
    let last = (0..n).rev().find(|&i| levels[zz[i]] != 0);
    match last {
        None => {
            models.has_coeffs.encode(enc, cls, false);
        }
        Some(last) => {
            models.has_coeffs.encode(enc, cls, true);
            write_uint(enc, &mut models.last_nz[cls], 0, last as u32);
            for (i, &zi) in zz.iter().take(last + 1).enumerate() {
                let base = if i == 0 { 0 } else { 4 };
                write_int(enc, &mut models.level[cls], base, levels[zi]);
            }
        }
    }

    // Reconstruct exactly as the decoder will.
    reconstruct_tile(levels, t, tw, th, qp, stats, coeffs, spatial, tx, recon);
}

/// Decodes one residual tile; the `tw x th` reconstruction lands in
/// `ts.recon`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_tile(
    dec: &mut BoolDecoder<'_>,
    models: &mut Models,
    tw: usize,
    th: usize,
    t: usize,
    qp: Qp,
    stats: &mut CodingStats,
    ts: &mut TileScratch,
) {
    let n = t * t;
    let cls = tx_class(t);
    let TileScratch {
        coeffs,
        levels,
        spatial,
        tx,
        recon,
        ..
    } = ts;
    levels.clear();
    levels.resize(n, 0);
    if models.has_coeffs.decode(dec, cls) {
        let last = read_uint(dec, &mut models.last_nz[cls], 0) as usize;
        let zz = zigzag(t);
        for i in 0..=last.min(n - 1) {
            let base = if i == 0 { 0 } else { 4 };
            levels[zz[i]] = read_int(dec, &mut models.level[cls], base);
        }
    }
    reconstruct_tile(levels, t, tw, th, qp, stats, coeffs, spatial, tx, recon);
}

/// Shared reconstruction: dequantize + inverse transform + crop.
#[allow(clippy::too_many_arguments)]
fn reconstruct_tile(
    levels: &[i32],
    t: usize,
    tw: usize,
    th: usize,
    qp: Qp,
    stats: &mut CodingStats,
    coeffs: &mut Vec<f64>,
    spatial: &mut Vec<i16>,
    tx: &mut TxScratch,
    out: &mut Vec<i16>,
) {
    let n = t * t;
    coeffs.resize(n, 0.0);
    dequantize(&levels[..n], qp, &mut coeffs[..n]);
    spatial.resize(n, 0);
    inverse_with(&coeffs[..n], t, &mut spatial[..n], tx);
    stats.transform_pixels += n as u64;
    out.clear();
    out.resize(tw * th, 0);
    for y in 0..th {
        out[y * tw..(y + 1) * tw].copy_from_slice(&spatial[y * t..y * t + tw]);
    }
}

/// Computes the spatial residual `cur - pred` as i16 (dispatched).
pub(crate) fn compute_residual(cur: &[u8], pred: &[u8], out: &mut [i16]) {
    crate::kernels::compute_residual(cur, pred, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::BoolDecoder;

    #[test]
    fn tile_iteration_covers_block() {
        let mut covered = vec![false; 20 * 12];
        for_each_tile(20, 12, 8, |tx, ty, tw, th| {
            for y in ty..ty + th {
                for x in tx..tx + tw {
                    assert!(!covered[y * 20 + x], "tile overlap at ({x},{y})");
                    covered[y * 20 + x] = true;
                }
            }
        });
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn tile_round_trip_enc_dec() {
        let tw = 8;
        let th = 8;
        let t = 8;
        let residual: Vec<i16> = (0..64).map(|i| ((i * 7) % 61) as i16 - 30).collect();
        let qp = Qp::new(20);
        let mut stats = CodingStats::new();

        let mut enc = BoolEncoder::new();
        let mut me = Models::new();
        let mut ts = TileScratch::default();
        encode_tile(
            &mut enc, &mut me, &residual, tw, th, t, qp, 0.5, false, &mut stats, &mut ts,
        );
        let recon_e = ts.recon.clone();
        let bytes = enc.finish();

        let mut dec = BoolDecoder::new(&bytes);
        let mut md = Models::new();
        decode_tile(&mut dec, &mut md, tw, th, t, qp, &mut stats, &mut ts);
        assert_eq!(recon_e, ts.recon, "encoder/decoder reconstruction mismatch");
    }

    #[test]
    fn partial_tile_round_trip() {
        // 5x3 residual in an 8x8 transform.
        let (tw, th, t) = (5, 3, 8);
        let residual: Vec<i16> = (0..15).map(|i| (i as i16) * 9 - 60).collect();
        let qp = Qp::new(8);
        let mut stats = CodingStats::new();
        let mut enc = BoolEncoder::new();
        let mut me = Models::new();
        let mut ts = TileScratch::default();
        encode_tile(
            &mut enc, &mut me, &residual, tw, th, t, qp, 0.5, false, &mut stats, &mut ts,
        );
        let recon_e = ts.recon.clone();
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(&bytes);
        let mut md = Models::new();
        decode_tile(&mut dec, &mut md, tw, th, t, qp, &mut stats, &mut ts);
        assert_eq!(recon_e, ts.recon);
        assert_eq!(recon_e.len(), tw * th);
    }

    #[test]
    fn low_qp_tile_is_near_lossless() {
        let residual: Vec<i16> = (0..64).map(|i| ((i * 13) % 41) as i16 - 20).collect();
        let mut stats = CodingStats::new();
        let mut enc = BoolEncoder::new();
        let mut me = Models::new();
        let mut ts = TileScratch::default();
        encode_tile(
            &mut enc,
            &mut me,
            &residual,
            8,
            8,
            8,
            Qp::new(0),
            0.5,
            false,
            &mut stats,
            &mut ts,
        );
        let max_err = residual
            .iter()
            .zip(&ts.recon)
            .map(|(a, b)| (a - b).abs())
            .max()
            .unwrap();
        assert!(max_err <= 1, "qp0 max error {max_err}");
    }

    #[test]
    fn zero_residual_codes_one_flag() {
        let residual = vec![0i16; 64];
        let mut stats = CodingStats::new();
        let mut enc = BoolEncoder::new();
        let mut me = Models::new();
        let mut ts = TileScratch::default();
        encode_tile(
            &mut enc,
            &mut me,
            &residual,
            8,
            8,
            8,
            Qp::new(30),
            0.5,
            false,
            &mut stats,
            &mut ts,
        );
        // Flush dominates; payload must be tiny.
        assert!(enc.finish().len() <= 6);
    }

    #[test]
    fn residual_computation() {
        let cur = vec![100u8, 200, 0, 255];
        let pred = vec![90u8, 210, 5, 250];
        let mut res = vec![0i16; 4];
        compute_residual(&cur, &pred, &mut res);
        assert_eq!(res, vec![10, -10, -5, 5]);
    }
}
