//! Separable 2-D DCT-II transforms for residual coding.
//!
//! Sizes 4/8/16/32 are supported, covering the H.264-like profile's
//! 8×8 transform and the VP9-like profile's up-to-32×32 transforms.
//! The transform is orthonormal, computed in `f64` with precomputed
//! basis matrices; encoder and decoder share the identical inverse
//! path, so reconstruction is deterministic and bit-exact between the
//! two (the property the paper's "golden transcode" fault screening
//! relies on: "relying on the core's deterministic behavior", §4.4).

use crate::kernels;
use std::sync::OnceLock;

/// Transform sizes supported by the codec.
pub const TX_SIZES: [usize; 4] = [4, 8, 16, 32];

pub(crate) fn basis(n: usize) -> &'static [f64] {
    static BASES: OnceLock<[Vec<f64>; 4]> = OnceLock::new();
    let all = BASES.get_or_init(|| {
        let make = |n: usize| {
            let mut m = vec![0.0f64; n * n];
            for k in 0..n {
                let scale = if k == 0 {
                    (1.0 / n as f64).sqrt()
                } else {
                    (2.0 / n as f64).sqrt()
                };
                for i in 0..n {
                    m[k * n + i] = scale
                        * ((std::f64::consts::PI / n as f64) * (i as f64 + 0.5) * k as f64).cos();
                }
            }
            m
        };
        [make(4), make(8), make(16), make(32)]
    });
    match n {
        4 => &all[0],
        8 => &all[1],
        16 => &all[2],
        32 => &all[3],
        _ => panic!("unsupported transform size {n}"),
    }
}

/// Transpose of [`basis`], cached per size: `basis_t(n)[i*n+k] ==
/// basis(n)[k*n+i]`. Lets both inverse passes walk contiguous rows.
pub(crate) fn basis_t(n: usize) -> &'static [f64] {
    static BASES_T: OnceLock<[Vec<f64>; 4]> = OnceLock::new();
    let all = BASES_T.get_or_init(|| {
        let make = |n: usize| {
            let b = basis(n);
            let mut m = vec![0.0f64; n * n];
            for k in 0..n {
                for i in 0..n {
                    m[i * n + k] = b[k * n + i];
                }
            }
            m
        };
        [make(4), make(8), make(16), make(32)]
    });
    match n {
        4 => &all[0],
        8 => &all[1],
        16 => &all[2],
        32 => &all[3],
        _ => panic!("unsupported transform size {n}"),
    }
}

/// Reusable intermediates for [`forward_with`]/[`inverse_with`], so the
/// per-tile transform does not heap-allocate. Buffers grow to the
/// largest size used and are reused across calls.
#[derive(Debug, Default)]
pub struct TxScratch {
    t0: Vec<f64>,
    t1: Vec<f64>,
}

impl TxScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Forward 2-D DCT of an `n x n` residual block (row-major).
///
/// # Panics
///
/// Panics if `n` is not one of [`TX_SIZES`] or `residual.len() != n*n`.
pub fn forward(residual: &[i16], n: usize, out: &mut [f64]) {
    forward_with(residual, n, out, &mut TxScratch::new());
}

/// [`forward`] with caller-provided scratch. Both passes run through
/// the dispatched [`kernels::tx_pass_strided`] over a transposed
/// intermediate; each output coefficient accumulates in the same index
/// order as the naive formulation in every backend, so results are
/// bit-identical regardless of `VCU_SIMD`.
pub fn forward_with(residual: &[i16], n: usize, out: &mut [f64], scratch: &mut TxScratch) {
    assert_eq!(residual.len(), n * n, "residual size mismatch");
    assert_eq!(out.len(), n * n, "output size mismatch");
    // `basis_t` is the transpose of `basis`, so it doubles as the
    // column-major view SIMD backends load from.
    let b = basis(n);
    let bt = basis_t(n);
    let TxScratch { t0, t1 } = scratch;
    // Widen the residual once (n^2 conversions instead of n^3).
    t1.clear();
    t1.extend(residual.iter().map(|&r| r as f64));
    let rf: &[f64] = t1;
    // tt = (B * X)^T: tt[k*n+y] = sum_i b[k*n+i] * x[y*n+i].
    t0.clear();
    t0.resize(n * n, 0.0);
    kernels::tx_pass_strided(b, bt, rf, n, t0);
    // out = B * tt^T: out[k*n+x] = sum_i b[k*n+i] * tt[x*n+i].
    kernels::tx_pass_strided(b, bt, t0, n, out);
}

/// Inverse 2-D DCT producing an `n x n` residual block, rounded to i16.
///
/// # Panics
///
/// Panics if `n` is not one of [`TX_SIZES`] or sizes mismatch.
pub fn inverse(coeffs: &[f64], n: usize, out: &mut [i16]) {
    inverse_with(coeffs, n, out, &mut TxScratch::new());
}

/// [`inverse`] with caller-provided scratch. Transposes the coefficient
/// block once so both passes are contiguous; per-output accumulation
/// order matches the naive formulation, keeping reconstruction
/// bit-exact with the encoder-side reference path.
pub fn inverse_with(coeffs: &[f64], n: usize, out: &mut [i16], scratch: &mut TxScratch) {
    assert_eq!(coeffs.len(), n * n, "coeff size mismatch");
    assert_eq!(out.len(), n * n, "output size mismatch");
    // Both passes multiply by B^T, whose column-major view is `basis`.
    let b = basis(n);
    let bt = basis_t(n);
    let TxScratch { t0, t1 } = scratch;
    // ct = C^T so the column pass reads rows.
    t1.clear();
    t1.resize(n * n, 0.0);
    for k in 0..n {
        for x in 0..n {
            t1[x * n + k] = coeffs[k * n + x];
        }
    }
    // tmp = B^T * C: tmp[y*n+x] = sum_k bt[y*n+k] * ct[x*n+k].
    t0.clear();
    t0.resize(n * n, 0.0);
    kernels::tx_pass_strided(bt, b, t1, n, t0);
    // out = tmp * B: out[y*n+x] = sum_k tmp[y*n+k] * bt[x*n+k],
    // computed in f64 (reusing t1), then rounded half-away-from-zero
    // and narrowed to i16 (exact in every backend).
    kernels::tx_pass_contig(bt, b, t0, n, t1);
    kernels::round_clamp_i16(t1, out);
}

/// Zigzag scan order for an `n x n` block: coefficients ordered by
/// anti-diagonal, low frequencies first. Cached per size.
pub fn zigzag(n: usize) -> &'static [usize] {
    static ZIGZAGS: OnceLock<[Vec<usize>; 4]> = OnceLock::new();
    let all = ZIGZAGS.get_or_init(|| {
        let make = |n: usize| {
            let mut order: Vec<usize> = (0..n * n).collect();
            order.sort_by_key(|&idx| {
                let (y, x) = (idx / n, idx % n);
                let d = x + y;
                // Alternate direction along each anti-diagonal.
                let pos = if d % 2 == 0 { n - 1 - x } else { x };
                (d, pos)
            });
            order
        };
        [make(4), make(8), make(16), make(32)]
    });
    match n {
        4 => &all[0],
        8 => &all[1],
        16 => &all[2],
        32 => &all[3],
        _ => panic!("unsupported transform size {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(n: usize) {
        let residual: Vec<i16> = (0..n * n)
            .map(|i| (((i * 37) % 255) as i16) - 128)
            .collect();
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        let mut back = vec![0i16; n * n];
        inverse(&coeffs, n, &mut back);
        assert_eq!(residual, back, "lossless round trip failed for n={n}");
    }

    #[test]
    fn all_sizes_round_trip() {
        for &n in &TX_SIZES {
            round_trip(n);
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let n = 8;
        let residual = vec![10i16; n * n];
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        // Orthonormal DCT: DC = mean * n (since scale = 1/sqrt(n) per dim).
        assert!((coeffs[0] - 10.0 * n as f64).abs() < 1e-9);
        // Everything else zero for constant input.
        assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-9));
    }

    #[test]
    fn energy_preserved() {
        // Parseval: orthonormal transform preserves L2 energy.
        let n = 16;
        let residual: Vec<i16> = (0..n * n).map(|i| ((i * 13 % 41) as i16) - 20).collect();
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        let e_in: f64 = residual.iter().map(|&r| (r as f64) * (r as f64)).sum();
        let e_out: f64 = coeffs.iter().map(|c| c * c).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-9);
    }

    #[test]
    fn smooth_content_compacts_energy() {
        // A gradient should put nearly all energy in low frequencies.
        let n = 8;
        let residual: Vec<i16> = (0..n * n).map(|i| (i % n) as i16 * 4).collect();
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        let zz = zigzag(n);
        let low: f64 = zz[..8].iter().map(|&i| coeffs[i] * coeffs[i]).sum();
        let total: f64 = coeffs.iter().map(|c| c * c).sum();
        assert!(low / total > 0.95, "energy compaction {}", low / total);
    }

    #[test]
    fn zigzag_is_permutation() {
        for &n in &TX_SIZES {
            let mut seen = vec![false; n * n];
            for &i in zigzag(n) {
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn zigzag_starts_at_dc() {
        for &n in &TX_SIZES {
            assert_eq!(zigzag(n)[0], 0);
            // Second element is one of the two d=1 anti-diagonal cells.
            assert!(
                zigzag(n)[1] == 1 || zigzag(n)[1] == n,
                "second element not on the first anti-diagonal for n={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unsupported transform size")]
    fn bad_size_panics() {
        let mut out = vec![0.0; 9];
        forward(&[0i16; 9], 3, &mut out);
    }

    /// The contiguous-pass implementation must be *bit*-identical to
    /// the naive triple loop, not just close: recon bitstreams hash
    /// these outputs.
    #[test]
    fn fast_path_bit_identical_to_naive() {
        let mut scratch = TxScratch::new();
        for &n in &TX_SIZES {
            let residual: Vec<i16> = (0..n * n)
                .map(|i| (((i * 97 + 31) % 511) as i16) - 255)
                .collect();
            let b = basis(n);
            // Naive forward.
            let mut tmp = vec![0.0f64; n * n];
            for k in 0..n {
                for y in 0..n {
                    let mut acc = 0.0;
                    for i in 0..n {
                        acc += b[k * n + i] * residual[y * n + i] as f64;
                    }
                    tmp[y * n + k] = acc;
                }
            }
            let mut naive_f = vec![0.0f64; n * n];
            for k in 0..n {
                for x in 0..n {
                    let mut acc = 0.0;
                    for i in 0..n {
                        acc += b[k * n + i] * tmp[i * n + x];
                    }
                    naive_f[k * n + x] = acc;
                }
            }
            let mut fast_f = vec![0.0f64; n * n];
            forward_with(&residual, n, &mut fast_f, &mut scratch);
            for (a, c) in naive_f.iter().zip(&fast_f) {
                assert_eq!(a.to_bits(), c.to_bits(), "forward diverged for n={n}");
            }
            // Naive inverse.
            let mut tmp2 = vec![0.0f64; n * n];
            for y in 0..n {
                for x in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += b[k * n + y] * naive_f[k * n + x];
                    }
                    tmp2[y * n + x] = acc;
                }
            }
            let mut naive_i = vec![0i16; n * n];
            for y in 0..n {
                for x in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += tmp2[y * n + k] * b[k * n + x];
                    }
                    naive_i[y * n + x] = acc.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
                }
            }
            let mut fast_i = vec![0i16; n * n];
            inverse_with(&fast_f, n, &mut fast_i, &mut scratch);
            assert_eq!(naive_i, fast_i, "inverse diverged for n={n}");
        }
    }
}
