//! Separable 2-D DCT-II transforms for residual coding.
//!
//! Sizes 4/8/16/32 are supported, covering the H.264-like profile's
//! 8×8 transform and the VP9-like profile's up-to-32×32 transforms.
//! The transform is orthonormal, computed in `f64` with precomputed
//! basis matrices; encoder and decoder share the identical inverse
//! path, so reconstruction is deterministic and bit-exact between the
//! two (the property the paper's "golden transcode" fault screening
//! relies on: "relying on the core's deterministic behavior", §4.4).

use std::sync::OnceLock;

/// Transform sizes supported by the codec.
pub const TX_SIZES: [usize; 4] = [4, 8, 16, 32];

fn basis(n: usize) -> &'static [f64] {
    static BASES: OnceLock<[Vec<f64>; 4]> = OnceLock::new();
    let all = BASES.get_or_init(|| {
        let make = |n: usize| {
            let mut m = vec![0.0f64; n * n];
            for k in 0..n {
                let scale = if k == 0 {
                    (1.0 / n as f64).sqrt()
                } else {
                    (2.0 / n as f64).sqrt()
                };
                for i in 0..n {
                    m[k * n + i] = scale
                        * ((std::f64::consts::PI / n as f64) * (i as f64 + 0.5) * k as f64).cos();
                }
            }
            m
        };
        [make(4), make(8), make(16), make(32)]
    });
    match n {
        4 => &all[0],
        8 => &all[1],
        16 => &all[2],
        32 => &all[3],
        _ => panic!("unsupported transform size {n}"),
    }
}

/// Forward 2-D DCT of an `n x n` residual block (row-major).
///
/// # Panics
///
/// Panics if `n` is not one of [`TX_SIZES`] or `residual.len() != n*n`.
pub fn forward(residual: &[i16], n: usize, out: &mut [f64]) {
    assert_eq!(residual.len(), n * n, "residual size mismatch");
    assert_eq!(out.len(), n * n, "output size mismatch");
    let b = basis(n);
    // tmp = B * X (transform columns of rows first: rows pass)
    let mut tmp = vec![0.0f64; n * n];
    for k in 0..n {
        for y in 0..n {
            let mut acc = 0.0;
            for i in 0..n {
                acc += b[k * n + i] * residual[y * n + i] as f64;
            }
            tmp[y * n + k] = acc;
        }
    }
    // out = B * tmp (columns pass)
    for k in 0..n {
        for x in 0..n {
            let mut acc = 0.0;
            for i in 0..n {
                acc += b[k * n + i] * tmp[i * n + x];
            }
            out[k * n + x] = acc;
        }
    }
}

/// Inverse 2-D DCT producing an `n x n` residual block, rounded to i16.
///
/// # Panics
///
/// Panics if `n` is not one of [`TX_SIZES`] or sizes mismatch.
pub fn inverse(coeffs: &[f64], n: usize, out: &mut [i16]) {
    assert_eq!(coeffs.len(), n * n, "coeff size mismatch");
    assert_eq!(out.len(), n * n, "output size mismatch");
    let b = basis(n);
    // tmp = B^T * C (columns)
    let mut tmp = vec![0.0f64; n * n];
    for y in 0..n {
        for x in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += b[k * n + y] * coeffs[k * n + x];
            }
            tmp[y * n + x] = acc;
        }
    }
    // out = tmp * B (rows)
    for y in 0..n {
        for x in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += tmp[y * n + k] * b[k * n + x];
            }
            out[y * n + x] = acc.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        }
    }
}

/// Zigzag scan order for an `n x n` block: coefficients ordered by
/// anti-diagonal, low frequencies first. Cached per size.
pub fn zigzag(n: usize) -> &'static [usize] {
    static ZIGZAGS: OnceLock<[Vec<usize>; 4]> = OnceLock::new();
    let all = ZIGZAGS.get_or_init(|| {
        let make = |n: usize| {
            let mut order: Vec<usize> = (0..n * n).collect();
            order.sort_by_key(|&idx| {
                let (y, x) = (idx / n, idx % n);
                let d = x + y;
                // Alternate direction along each anti-diagonal.
                let pos = if d % 2 == 0 { n - 1 - x } else { x };
                (d, pos)
            });
            order
        };
        [make(4), make(8), make(16), make(32)]
    });
    match n {
        4 => &all[0],
        8 => &all[1],
        16 => &all[2],
        32 => &all[3],
        _ => panic!("unsupported transform size {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(n: usize) {
        let residual: Vec<i16> = (0..n * n)
            .map(|i| (((i * 37) % 255) as i16) - 128)
            .collect();
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        let mut back = vec![0i16; n * n];
        inverse(&coeffs, n, &mut back);
        assert_eq!(residual, back, "lossless round trip failed for n={n}");
    }

    #[test]
    fn all_sizes_round_trip() {
        for &n in &TX_SIZES {
            round_trip(n);
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let n = 8;
        let residual = vec![10i16; n * n];
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        // Orthonormal DCT: DC = mean * n (since scale = 1/sqrt(n) per dim).
        assert!((coeffs[0] - 10.0 * n as f64).abs() < 1e-9);
        // Everything else zero for constant input.
        assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-9));
    }

    #[test]
    fn energy_preserved() {
        // Parseval: orthonormal transform preserves L2 energy.
        let n = 16;
        let residual: Vec<i16> = (0..n * n).map(|i| ((i * 13 % 41) as i16) - 20).collect();
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        let e_in: f64 = residual.iter().map(|&r| (r as f64) * (r as f64)).sum();
        let e_out: f64 = coeffs.iter().map(|c| c * c).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-9);
    }

    #[test]
    fn smooth_content_compacts_energy() {
        // A gradient should put nearly all energy in low frequencies.
        let n = 8;
        let residual: Vec<i16> = (0..n * n).map(|i| (i % n) as i16 * 4).collect();
        let mut coeffs = vec![0.0; n * n];
        forward(&residual, n, &mut coeffs);
        let zz = zigzag(n);
        let low: f64 = zz[..8].iter().map(|&i| coeffs[i] * coeffs[i]).sum();
        let total: f64 = coeffs.iter().map(|c| c * c).sum();
        assert!(low / total > 0.95, "energy compaction {}", low / total);
    }

    #[test]
    fn zigzag_is_permutation() {
        for &n in &TX_SIZES {
            let mut seen = vec![false; n * n];
            for &i in zigzag(n) {
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn zigzag_starts_at_dc() {
        for &n in &TX_SIZES {
            assert_eq!(zigzag(n)[0], 0);
            // Second element is one of the two d=1 anti-diagonal cells.
            assert!(
                zigzag(n)[1] == 1 || zigzag(n)[1] == n,
                "second element not on the first anti-diagonal for n={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unsupported transform size")]
    fn bad_size_panics() {
        let mut out = vec![0.0; 9];
        forward(&[0i16; 9], 3, &mut out);
    }
}
