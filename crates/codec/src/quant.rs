//! Scalar quantization with configurable dead-zone.
//!
//! The quantizer maps transform coefficients to integer levels. The
//! rounding bias (`deadzone`) is one of the tool-gap knobs between the
//! "software" and "hardware" encoder configurations: the paper notes
//! the VCU's pipelined architecture "cannot easily support all the same
//! tools as CPU, such as Trellis quantization" (§4.1); we model trellis
//! as a smarter level-choice pass available only to the software
//! toolset.

use crate::kernels;
use crate::types::Qp;

/// Quantizes `coeffs` into integer levels with rounding bias
/// `deadzone` in `[0, 0.5]` (0.5 = round-to-nearest, smaller values
/// zero out more coefficients, trading quality for rate).
///
/// # Panics
///
/// Panics if output slice length differs from input.
pub fn quantize(coeffs: &[f64], qp: Qp, deadzone: f64, levels: &mut [i32]) {
    assert_eq!(coeffs.len(), levels.len(), "level buffer size mismatch");
    kernels::quantize_levels(coeffs, qp.step(), deadzone, levels);
}

/// Reconstructs coefficient values from levels.
///
/// # Panics
///
/// Panics if output slice length differs from input.
pub fn dequantize(levels: &[i32], qp: Qp, coeffs: &mut [f64]) {
    assert_eq!(levels.len(), coeffs.len(), "coeff buffer size mismatch");
    kernels::dequantize_coeffs(levels, qp.step(), coeffs);
}

/// Trellis-like level optimization (software toolset only): for each
/// nonzero level, keep it only if the rate saving from dropping to the
/// next-lower magnitude does not cost more distortion than
/// `lambda * rate_per_level` justifies. A greedy approximation of
/// trellis quantization, applied coefficient-by-coefficient.
pub fn optimize_levels(coeffs: &[f64], qp: Qp, lambda: f64, levels: &mut [i32]) {
    let step = qp.step();
    // Approximate rate cost of one unit of level magnitude, in bits.
    // Levels are coded with a unary/exp-Golomb hybrid; dropping a level
    // from 1 to 0 saves roughly 2 bits (nonzero flag + sign).
    let rate_save_zero = 2.0;
    let rate_save_dec = 1.0;
    for (i, l) in levels.iter_mut().enumerate() {
        if *l == 0 {
            continue;
        }
        let c = coeffs[i];
        let cur = *l as f64 * step;
        let d_cur = (c - cur) * (c - cur);
        let lower_mag = l.abs() - 1;
        let lower = lower_mag as f64 * step * l.signum() as f64;
        let d_lower = (c - lower) * (c - lower);
        let rate_save = if lower_mag == 0 {
            rate_save_zero
        } else {
            rate_save_dec
        };
        if d_lower - d_cur < lambda * rate_save {
            *l = lower_mag * l.signum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_bounded_by_step() {
        let qp = Qp::new(24);
        let step = qp.step();
        let coeffs: Vec<f64> = (-20..20).map(|i| i as f64 * 3.7).collect();
        let mut levels = vec![0i32; coeffs.len()];
        quantize(&coeffs, qp, 0.5, &mut levels);
        let mut back = vec![0.0; coeffs.len()];
        dequantize(&levels, qp, &mut back);
        for (c, b) in coeffs.iter().zip(&back) {
            assert!(
                (c - b).abs() <= step * 0.5 + 1e-9,
                "error {} > step/2",
                c - b
            );
        }
    }

    #[test]
    fn deadzone_zeroes_small_coefficients() {
        let qp = Qp::new(24);
        let step = qp.step();
        let coeffs = vec![step * 0.6, -step * 0.6];
        let mut round = vec![0i32; 2];
        quantize(&coeffs, qp, 0.5, &mut round);
        assert_eq!(round, vec![1, -1]);
        let mut dz = vec![0i32; 2];
        quantize(&coeffs, qp, 0.2, &mut dz);
        assert_eq!(dz, vec![0, 0], "deadzone should zero 0.6-step coeffs");
    }

    #[test]
    fn higher_qp_coarser() {
        let coeffs = vec![100.0; 16];
        let mut fine = vec![0i32; 16];
        let mut coarse = vec![0i32; 16];
        quantize(&coeffs, Qp::new(12), 0.5, &mut fine);
        quantize(&coeffs, Qp::new(48), 0.5, &mut coarse);
        assert!(fine[0] > coarse[0]);
    }

    #[test]
    fn sign_preserved() {
        let coeffs = vec![37.0, -37.0];
        let mut levels = vec![0i32; 2];
        quantize(&coeffs, Qp::new(24), 0.5, &mut levels);
        assert_eq!(levels[0], -levels[1]);
        assert!(levels[0] > 0);
    }

    #[test]
    fn trellis_drops_marginal_levels() {
        let qp = Qp::new(24);
        let step = qp.step();
        // Coefficient just barely above the rounding threshold: the
        // distortion cost of dropping it is small.
        let coeffs = vec![step * 0.51];
        let mut levels = vec![0i32; 1];
        quantize(&coeffs, qp, 0.5, &mut levels);
        assert_eq!(levels[0], 1);
        optimize_levels(&coeffs, qp, step * step, &mut levels);
        assert_eq!(levels[0], 0, "marginal level should be dropped");
    }

    #[test]
    fn trellis_keeps_strong_levels() {
        let qp = Qp::new(24);
        let step = qp.step();
        let coeffs = vec![step * 3.0];
        let mut levels = vec![0i32; 1];
        quantize(&coeffs, qp, 0.5, &mut levels);
        let before = levels[0];
        optimize_levels(&coeffs, qp, 0.01, &mut levels);
        assert_eq!(levels[0], before, "strong level must survive");
    }
}
