//! Motion estimation and motion compensation.
//!
//! Estimation runs a predictor-seeded diamond search at full-pel
//! followed by an optional exhaustive refinement window and a half-pel
//! refinement step. The VCU performs "an exhaustive, multi-resolution
//! motion search (down to 1/8th pixel resolution)" in its reference
//! store (§3.2); we bound precision at half-pel and meter every SAD so
//! the device timing models can charge for the search work.

use crate::kernels;
use crate::stats::CodingStats;
use crate::types::MotionVector;
use vcu_media::Plane;

/// Motion-compensates a `bw x bh` block: fetches the block at
/// `(x, y) + mv` from `reference` into `out`, bilinearly interpolating
/// for half-pel vectors and edge-clamping at frame borders.
///
/// Half-pel taps use [`Plane::copy_block_hpel`]'s fixed-point integer
/// bilinear kernel, which is byte-identical to the old per-pixel f64
/// `sample_bilinear` path over the full u8 domain — the euclidean
/// split of the vector reproduces `floor(x + mv/2)` for negative
/// components too.
///
/// # Panics
///
/// Panics if `out.len() != bw * bh`.
pub fn mc_block(
    reference: &Plane,
    x: usize,
    y: usize,
    mv: MotionVector,
    bw: usize,
    bh: usize,
    out: &mut [u8],
) {
    assert_eq!(out.len(), bw * bh, "mc output size mismatch");
    let bx = x as isize + (mv.x as isize).div_euclid(2);
    let by = y as isize + (mv.y as isize).div_euclid(2);
    let fx = (mv.x as isize).rem_euclid(2) as u8;
    let fy = (mv.y as isize).rem_euclid(2) as u8;
    kernels::plane_copy_block_hpel(reference, bx, by, fx, fy, bw, bh, out);
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchParams {
    /// Full-pel diamond search iteration cap.
    pub diamond_iters: u32,
    /// Exhaustive refinement radius around the diamond result
    /// (0 disables; the "software" toolset uses a positive radius).
    pub exhaustive_radius: i16,
    /// Whether to refine to half-pel precision.
    pub half_pel: bool,
    /// Hard bound on |mv| components in full pels (the hardware's
    /// bounded search window; §3.2's 128-pixel horizontal window).
    pub max_range: i16,
}

impl SearchParams {
    /// Fast hardware-like search: diamond + half-pel, bounded window.
    pub fn hardware() -> Self {
        SearchParams {
            diamond_iters: 16,
            exhaustive_radius: 0,
            half_pel: true,
            max_range: 64,
        }
    }

    /// Thorough software-like search with exhaustive refinement.
    pub fn software() -> Self {
        SearchParams {
            diamond_iters: 24,
            exhaustive_radius: 3,
            half_pel: true,
            max_range: 128,
        }
    }
}

/// Result of a motion search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchResult {
    /// Best motion vector found (half-pel units).
    pub mv: MotionVector,
    /// SAD of the best match.
    pub sad: u64,
}

/// Reusable buffers for [`search_scratch`]: the current-block copy and
/// the half-pel interpolation buffer. One instance threaded through a
/// frame encode removes two heap allocations per searched block.
#[derive(Debug, Default)]
pub struct MotionScratch {
    cur: Vec<u8>,
    buf: Vec<u8>,
}

impl MotionScratch {
    /// Empty scratch; buffers grow to the largest block searched.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Searches `reference` for the best match to the `bw x bh` block of
/// `current` at `(x, y)`, seeded with `predictor` (and the zero vector).
/// SAD work is metered into `stats`.
///
/// Allocates its scratch internally; hot paths should prefer
/// [`search_scratch`] with a reused [`MotionScratch`].
#[allow(clippy::too_many_arguments)]
pub fn search(
    reference: &Plane,
    current: &Plane,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    predictor: MotionVector,
    params: &SearchParams,
    stats: &mut CodingStats,
) -> SearchResult {
    let mut scratch = MotionScratch::new();
    search_scratch(
        reference,
        current,
        x,
        y,
        bw,
        bh,
        predictor,
        params,
        stats,
        &mut scratch,
    )
}

/// [`search`] with caller-provided scratch buffers (zero allocations).
///
/// Candidate SADs use [`Plane::sad_block_thresholded`] with the
/// best-so-far as the threshold: a candidate that cannot win is
/// abandoned row-by-row. Because a pruned candidate's partial sum is
/// `>= best_sad`, every `sad < best_sad` comparison — and therefore the
/// returned vector and SAD — is identical to the unthresholded search.
/// Metering policy: `sad_pixels`/`ref_bytes_read` keep charging the
/// full `bw * bh` per candidate (the device timing charge a hardware
/// SAD array would burn), while `sad_pixels_examined` records the
/// pixels the host actually touched.
#[allow(clippy::too_many_arguments)]
pub fn search_scratch(
    reference: &Plane,
    current: &Plane,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    predictor: MotionVector,
    params: &SearchParams,
    stats: &mut CodingStats,
    scratch: &mut MotionScratch,
) -> SearchResult {
    let MotionScratch { cur, buf } = scratch;
    cur.clear();
    cur.resize(bw * bh, 0);
    current.copy_block_clamped(x as isize, y as isize, bw, bh, cur);
    let cur: &[u8] = cur;

    let clamp_mv = |v: i16| v.clamp(-params.max_range, params.max_range);
    let eval_full = |mx: i16, my: i16, threshold: u64, stats: &mut CodingStats| -> u64 {
        stats.sad_pixels += (bw * bh) as u64;
        stats.ref_bytes_read += (bw * bh) as u64;
        let (sad, examined) = kernels::plane_sad_block_thresholded(
            reference,
            x as isize + mx as isize,
            y as isize + my as isize,
            bw,
            bh,
            cur,
            threshold,
        );
        stats.sad_pixels_examined += examined;
        sad
    };

    // Seed with zero and predictor (full-pel part).
    let mut best = (0i16, 0i16);
    let mut best_sad = eval_full(0, 0, u64::MAX, stats);
    let pred = (clamp_mv(predictor.x / 2), clamp_mv(predictor.y / 2));
    if pred != (0, 0) {
        let s = eval_full(pred.0, pred.1, best_sad, stats);
        if s < best_sad {
            best_sad = s;
            best = pred;
        }
    }

    // Large-then-small diamond pattern.
    let large: [(i16, i16); 8] = [
        (0, -2),
        (1, -1),
        (2, 0),
        (1, 1),
        (0, 2),
        (-1, 1),
        (-2, 0),
        (-1, -1),
    ];
    let small: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
    let mut step_large = true;
    for _ in 0..params.diamond_iters {
        let pattern: &[(i16, i16)] = if step_large { &large } else { &small };
        let mut improved = false;
        for &(dx, dy) in pattern {
            let cand = (clamp_mv(best.0 + dx), clamp_mv(best.1 + dy));
            if cand == best {
                continue;
            }
            let s = eval_full(cand.0, cand.1, best_sad, stats);
            if s < best_sad {
                best_sad = s;
                best = cand;
                improved = true;
            }
        }
        if !improved {
            if step_large {
                step_large = false; // shrink the pattern once
            } else {
                break;
            }
        }
    }

    // Optional exhaustive window around the diamond result.
    let r = params.exhaustive_radius;
    if r > 0 {
        for dy in -r..=r {
            for dx in -r..=r {
                let cand = (clamp_mv(best.0 + dx), clamp_mv(best.1 + dy));
                let s = eval_full(cand.0, cand.1, best_sad, stats);
                if s < best_sad {
                    best_sad = s;
                    best = cand;
                }
            }
        }
    }

    let mut best_mv = MotionVector::full_pel(best.0, best.1);

    // Half-pel refinement. The interpolated candidate lives in the
    // scratch buffer; its SAD early-exits row-by-row against the
    // best-so-far with the same pruning-preserves-decisions argument
    // as the full-pel candidates.
    if params.half_pel {
        buf.clear();
        buf.resize(bw * bh, 0);
        for dy in -1i16..=1 {
            for dx in -1i16..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let cand = MotionVector::new(best_mv.x + dx, best_mv.y + dy);
                mc_block(reference, x, y, cand, bw, bh, buf);
                stats.sad_pixels += (bw * bh) as u64;
                stats.ref_bytes_read += (bw * bh * 2) as u64; // subpel taps
                let (s, examined) = kernels::sad_rows_thresholded(buf, cur, bw, best_sad);
                stats.sad_pixels_examined += examined;
                if s < best_sad {
                    best_sad = s;
                    best_mv = cand;
                }
            }
        }
    }

    SearchResult {
        mv: best_mv,
        sad: best_sad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured() -> Plane {
        Plane::from_fn(64, 64, |x, y| {
            (((x * 3) ^ (y * 7)) as u8)
                .wrapping_mul(13)
                .wrapping_add(40)
        })
    }

    #[test]
    fn mc_full_pel_matches_copy() {
        let p = textured();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        mc_block(&p, 8, 8, MotionVector::full_pel(2, -1), 8, 8, &mut a);
        p.copy_block_clamped(10, 7, 8, 8, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn mc_half_pel_interpolates() {
        let mut p = Plane::new(4, 4);
        p.set(0, 0, 0);
        p.set(1, 0, 100);
        let mut out = vec![0u8; 1];
        mc_block(&p, 0, 0, MotionVector::new(1, 0), 1, 1, &mut out);
        assert_eq!(out[0], 50);
    }

    #[test]
    fn search_finds_pure_translation() {
        let reference = textured();
        // Current frame = reference shifted right by 3, down by 2:
        // pixel (x,y) of current = reference(x-3, y-2), so the matching
        // reference block is at offset (-3,-2)... actually mv points
        // from current block to reference position: ref_pos = pos + mv.
        let current = Plane::from_fn(64, 64, |x, y| {
            reference.get_clamped(x as isize - 3, y as isize - 2)
        });
        let mut stats = CodingStats::new();
        let r = search(
            &reference,
            &current,
            16,
            16,
            16,
            16,
            MotionVector::ZERO,
            &SearchParams::hardware(),
            &mut stats,
        );
        assert_eq!(r.mv, MotionVector::full_pel(-3, -2), "mv {:?}", r.mv);
        assert_eq!(r.sad, 0);
        assert!(stats.sad_pixels > 0);
    }

    #[test]
    fn predictor_seeding_helps_long_motion() {
        let reference = textured();
        let current = Plane::from_fn(64, 64, |x, y| {
            reference.get_clamped(x as isize - 20, y as isize)
        });
        let mut stats = CodingStats::new();
        // With an accurate predictor, the search should lock on.
        let r = search(
            &reference,
            &current,
            24,
            24,
            16,
            16,
            MotionVector::full_pel(-20, 0),
            &SearchParams::hardware(),
            &mut stats,
        );
        assert_eq!(r.mv, MotionVector::full_pel(-20, 0));
        assert_eq!(r.sad, 0);
    }

    #[test]
    fn software_search_does_more_work() {
        let reference = textured();
        let current = Plane::from_fn(64, 64, |x, y| {
            reference.get_clamped(x as isize - 5, y as isize - 4)
        });
        let mut hw_stats = CodingStats::new();
        let mut sw_stats = CodingStats::new();
        search(
            &reference,
            &current,
            16,
            16,
            16,
            16,
            MotionVector::ZERO,
            &SearchParams::hardware(),
            &mut hw_stats,
        );
        search(
            &reference,
            &current,
            16,
            16,
            16,
            16,
            MotionVector::ZERO,
            &SearchParams::software(),
            &mut sw_stats,
        );
        assert!(sw_stats.sad_pixels > hw_stats.sad_pixels);
    }

    #[test]
    fn range_clamping_respected() {
        let reference = textured();
        let current = Plane::from_fn(64, 64, |x, y| {
            reference.get_clamped(x as isize - 30, y as isize)
        });
        let params = SearchParams {
            max_range: 4,
            ..SearchParams::hardware()
        };
        let mut stats = CodingStats::new();
        let r = search(
            &reference,
            &current,
            32,
            32,
            16,
            16,
            MotionVector::ZERO,
            &params,
            &mut stats,
        );
        assert!(r.mv.x.abs() <= 4 * 2 + 1, "mv beyond range: {:?}", r.mv);
    }
}

/// Sum of absolute transformed differences over 8×8 Hadamard blocks —
/// a better rate proxy than SAD for mode decisions, because it prices
/// residuals in (roughly) the transform domain the coder actually pays
/// bits in. Partial edge blocks fall back to absolute differences.
pub fn satd(cur: &[u8], pred: &[u8], bw: usize, bh: usize) -> u64 {
    debug_assert_eq!(cur.len(), bw * bh);
    debug_assert_eq!(pred.len(), bw * bh);
    kernels::satd(cur, pred, bw, bh)
}

#[cfg(test)]
mod satd_tests {
    use super::*;

    #[test]
    fn satd_zero_for_identical() {
        let a: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
        assert_eq!(satd(&a, &a, 16, 16), 0);
    }

    #[test]
    fn satd_prefers_structured_residual() {
        // A flat DC offset compacts into one coefficient; random noise
        // of the same SAD spreads across all 64 — SATD should price the
        // noise higher even at equal SAD.
        let cur = vec![128u8; 64];
        let flat: Vec<u8> = vec![120u8; 64]; // SAD 512, all DC
                                             // Pseudo-random ±8 noise: same SAD, energy smeared across the
                                             // whole spectrum instead of compacting into one coefficient.
        let noisy: Vec<u8> = (0..64u32)
            .map(|i| {
                let h = i.wrapping_mul(2654435761) >> 28;
                if h % 2 == 0 {
                    120
                } else {
                    136
                }
            })
            .collect();
        let s_flat = satd(&cur, &flat, 8, 8);
        let s_noisy = satd(&cur, &noisy, 8, 8);
        assert!(s_flat < s_noisy, "flat {s_flat} vs noisy {s_noisy}");
    }

    #[test]
    fn satd_handles_partial_blocks() {
        let cur = vec![10u8; 5 * 3];
        let pred = vec![7u8; 5 * 3];
        assert_eq!(satd(&cur, &pred, 5, 3), 45);
    }
}
