//! Intra prediction modes.
//!
//! Predicts a block from already-reconstructed neighboring pixels in
//! the same frame (the row above and column left of the block). The
//! H.264-like profile codes DC / horizontal / vertical; the VP9-like
//! profile adds a TrueMotion-style gradient mode.

use vcu_media::Plane;

/// Available intra prediction modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntraMode {
    /// Average of available neighbors.
    Dc,
    /// Copy the left column rightwards.
    Horizontal,
    /// Copy the top row downwards.
    Vertical,
    /// TrueMotion: `top[x] + left[y] - topleft`, clamped (VP9 profile).
    TrueMotion,
}

impl IntraMode {
    /// Modes available to the H.264-like profile.
    pub const H264_MODES: [IntraMode; 3] =
        [IntraMode::Dc, IntraMode::Horizontal, IntraMode::Vertical];

    /// Modes available to the VP9-like profile.
    pub const VP9_MODES: [IntraMode; 4] = [
        IntraMode::Dc,
        IntraMode::Horizontal,
        IntraMode::Vertical,
        IntraMode::TrueMotion,
    ];

    /// Compact index used in the bitstream.
    pub fn index(self) -> usize {
        match self {
            IntraMode::Dc => 0,
            IntraMode::Horizontal => 1,
            IntraMode::Vertical => 2,
            IntraMode::TrueMotion => 3,
        }
    }

    /// Inverse of [`IntraMode::index`]. Returns `None` for invalid indices.
    pub fn from_index(i: usize) -> Option<IntraMode> {
        match i {
            0 => Some(IntraMode::Dc),
            1 => Some(IntraMode::Horizontal),
            2 => Some(IntraMode::Vertical),
            3 => Some(IntraMode::TrueMotion),
            _ => None,
        }
    }
}

/// Neighbor context for predicting a block at `(x, y)`.
///
/// Holds the top row (length `bw`), left column (length `bh`), and the
/// top-left corner pixel, each falling back to 128 where the frame
/// border makes neighbors unavailable.
#[derive(Debug, Clone)]
pub struct IntraNeighbors {
    top: Vec<u8>,
    left: Vec<u8>,
    top_left: u8,
    has_top: bool,
    has_left: bool,
}

impl IntraNeighbors {
    /// Gathers neighbors from the reconstruction plane for a `bw x bh`
    /// block at `(x, y)`.
    pub fn gather(recon: &Plane, x: usize, y: usize, bw: usize, bh: usize) -> Self {
        let has_top = y > 0;
        let has_left = x > 0;
        let top = (0..bw)
            .map(|i| {
                if has_top {
                    recon.get_clamped((x + i) as isize, y as isize - 1)
                } else {
                    128
                }
            })
            .collect();
        let left = (0..bh)
            .map(|i| {
                if has_left {
                    recon.get_clamped(x as isize - 1, (y + i) as isize)
                } else {
                    128
                }
            })
            .collect();
        let top_left = if has_top && has_left {
            recon.get_clamped(x as isize - 1, y as isize - 1)
        } else {
            128
        };
        IntraNeighbors {
            top,
            left,
            top_left,
            has_top,
            has_left,
        }
    }

    /// Produces the prediction for `mode` into `out` (row-major `bw x bh`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != top.len() * left.len()`.
    pub fn predict(&self, mode: IntraMode, out: &mut [u8]) {
        let bw = self.top.len();
        let bh = self.left.len();
        assert_eq!(out.len(), bw * bh, "prediction buffer size mismatch");
        match mode {
            IntraMode::Dc => {
                let dc = match (self.has_top, self.has_left) {
                    (true, true) => {
                        let s: u32 = self.top.iter().map(|&v| v as u32).sum::<u32>()
                            + self.left.iter().map(|&v| v as u32).sum::<u32>();
                        ((s + (bw + bh) as u32 / 2) / (bw + bh) as u32) as u8
                    }
                    (true, false) => {
                        let s: u32 = self.top.iter().map(|&v| v as u32).sum();
                        ((s + bw as u32 / 2) / bw as u32) as u8
                    }
                    (false, true) => {
                        let s: u32 = self.left.iter().map(|&v| v as u32).sum();
                        ((s + bh as u32 / 2) / bh as u32) as u8
                    }
                    (false, false) => 128,
                };
                out.fill(dc);
            }
            IntraMode::Horizontal => {
                for yy in 0..bh {
                    out[yy * bw..(yy + 1) * bw].fill(self.left[yy]);
                }
            }
            IntraMode::Vertical => {
                for yy in 0..bh {
                    out[yy * bw..(yy + 1) * bw].copy_from_slice(&self.top);
                }
            }
            IntraMode::TrueMotion => {
                for yy in 0..bh {
                    for xx in 0..bw {
                        let v = self.top[xx] as i32 + self.left[yy] as i32 - self.top_left as i32;
                        out[yy * bw + xx] = v.clamp(0, 255) as u8;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recon_with_border() -> Plane {
        // Row 0 = 10..., column 0 = 200...
        Plane::from_fn(16, 16, |x, y| {
            if y == 0 {
                (10 + x) as u8
            } else if x == 0 {
                200
            } else {
                0
            }
        })
    }

    #[test]
    fn vertical_copies_top_row() {
        let r = recon_with_border();
        let n = IntraNeighbors::gather(&r, 1, 1, 4, 4);
        let mut out = vec![0u8; 16];
        n.predict(IntraMode::Vertical, &mut out);
        assert_eq!(&out[..4], &[11, 12, 13, 14]);
        assert_eq!(&out[12..], &[11, 12, 13, 14]);
    }

    #[test]
    fn horizontal_copies_left_column() {
        let r = recon_with_border();
        let n = IntraNeighbors::gather(&r, 1, 1, 4, 4);
        let mut out = vec![0u8; 16];
        n.predict(IntraMode::Horizontal, &mut out);
        assert!(out.iter().all(|&v| v == 200));
    }

    #[test]
    fn dc_averages_both_sides() {
        let r = recon_with_border();
        let n = IntraNeighbors::gather(&r, 1, 1, 2, 2);
        let mut out = vec![0u8; 4];
        n.predict(IntraMode::Dc, &mut out);
        // top = [11,12], left = [200,200] -> (11+12+400+2)/4 = 106.
        assert!(out.iter().all(|&v| v == 106), "{out:?}");
    }

    #[test]
    fn dc_without_neighbors_is_128() {
        let r = Plane::new(8, 8);
        let n = IntraNeighbors::gather(&r, 0, 0, 4, 4);
        let mut out = vec![0u8; 16];
        n.predict(IntraMode::Dc, &mut out);
        assert!(out.iter().all(|&v| v == 128));
    }

    #[test]
    fn true_motion_gradient() {
        let mut r = Plane::new(8, 8);
        r.set(0, 0, 100); // top-left
        r.set(1, 0, 110); // top
        r.set(0, 1, 120); // left
        let n = IntraNeighbors::gather(&r, 1, 1, 1, 1);
        let mut out = vec![0u8; 1];
        n.predict(IntraMode::TrueMotion, &mut out);
        assert_eq!(out[0], (110 + 120 - 100) as u8);
    }

    #[test]
    fn mode_index_round_trip() {
        for m in IntraMode::VP9_MODES {
            assert_eq!(IntraMode::from_index(m.index()), Some(m));
        }
        assert_eq!(IntraMode::from_index(9), None);
    }
}
