//! In-loop deblocking filter.
//!
//! Smooths blocking artifacts across transform-block edges in the
//! reconstructed frame. Runs identically in encoder and decoder (it is
//! part of the reconstruction loop), which is why the paper's final
//! pipeline stage applies "loop filtering" before frame-buffer
//! compression (§3.2). Filter strength scales with QP: coarse
//! quantization produces stronger edges that need more smoothing, while
//! near-lossless frames are left almost untouched.

use crate::types::Qp;
use vcu_media::Plane;

/// Applies the deblocking filter to `plane` along a grid of `grid`
/// pixel edges (typically the transform size), with strength derived
/// from `qp`. Returns the number of pixels modified (for stats).
pub fn deblock_plane(plane: &mut Plane, grid: usize, qp: Qp) -> u64 {
    assert!(grid >= 2, "grid must be at least 2");
    let alpha = (qp.step() * 2.0) as i32 + 2; // edge-detection threshold
    let beta = (qp.step() * 0.5) as i32 + 1; // gradient threshold
    let (w, h) = (plane.width(), plane.height());
    let mut touched = 0u64;

    // Vertical edges (filter horizontally across columns x = grid, 2*grid, ...).
    let mut x = grid;
    while x < w {
        for y in 0..h {
            touched += filter_pair(plane, x, y, true, alpha, beta);
        }
        x += grid;
    }
    // Horizontal edges.
    let mut y = grid;
    while y < h {
        for x in 0..w {
            touched += filter_pair(plane, x, y, false, alpha, beta);
        }
        y += grid;
    }
    touched
}

/// Filters one edge-crossing pixel quad `p1 p0 | q0 q1` where `q0` is
/// at `(x, y)` and the edge is vertical (`horiz_filter = true`, pixels
/// along a row) or horizontal (pixels along a column).
fn filter_pair(plane: &mut Plane, x: usize, y: usize, horiz: bool, alpha: i32, beta: i32) -> u64 {
    let (xi, yi) = (x as isize, y as isize);
    let fetch = |dx: isize, dy: isize| -> i32 {
        if horiz {
            plane.get_clamped(xi + dx, yi) as i32
        } else {
            plane.get_clamped(xi, yi + dy) as i32
        }
    };
    let p1 = fetch(-2, -2);
    let p0 = fetch(-1, -1);
    let q0 = fetch(0, 0);
    let q1 = fetch(1, 1);

    // Only filter true blocking edges: a step across the edge that is
    // significant but not a real image feature (gradients on each side
    // must be small).
    if (p0 - q0).abs() >= alpha || (p1 - p0).abs() >= beta || (q1 - q0).abs() >= beta {
        return 0;
    }
    // 4-tap smoothing pulling p0/q0 towards each other.
    let delta = ((q0 - p0) * 3 + (p1 - q1) + 4) >> 3;
    let delta = delta.clamp(-beta, beta);
    let new_p0 = (p0 + delta).clamp(0, 255) as u8;
    let new_q0 = (q0 - delta).clamp(0, 255) as u8;
    if horiz {
        if x >= 1 {
            plane.set(x - 1, y, new_p0);
        }
        plane.set(x, y, new_q0);
    } else {
        if y >= 1 {
            plane.set(x, y - 1, new_p0);
        }
        plane.set(x, y, new_q0);
    }
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_edge() -> Plane {
        // Flat 100 left of x=8, flat 120 right: a classic blocking edge.
        Plane::from_fn(16, 16, |x, _| if x < 8 { 100 } else { 120 })
    }

    #[test]
    fn blocking_edge_is_smoothed() {
        let mut p = step_edge();
        let touched = deblock_plane(&mut p, 8, Qp::new(40));
        assert!(touched > 0);
        // The step across the x=8 edge should have shrunk.
        let gap_after = p.get(8, 4) as i32 - p.get(7, 4) as i32;
        assert!(gap_after.abs() < 20, "edge gap still {gap_after}");
    }

    #[test]
    fn strong_feature_edges_preserved() {
        // A 200-level step is a real image feature at low QP: alpha is
        // small, so the filter must leave it alone.
        let mut p = Plane::from_fn(16, 16, |x, _| if x < 8 { 20 } else { 220 });
        let before = p.clone();
        deblock_plane(&mut p, 8, Qp::new(10));
        assert_eq!(p, before, "feature edge was filtered");
    }

    #[test]
    fn flat_area_untouched() {
        let mut p = Plane::new(16, 16);
        p.fill(50);
        let before = p.clone();
        deblock_plane(&mut p, 8, Qp::new(50));
        assert_eq!(p, before);
    }

    #[test]
    fn higher_qp_filters_more() {
        let mut low = step_edge();
        let mut high = step_edge();
        let t_low = deblock_plane(&mut low, 8, Qp::new(8));
        let t_high = deblock_plane(&mut high, 8, Qp::new(45));
        assert!(t_high >= t_low, "qp45 touched {t_high} < qp8 {t_low}");
    }

    #[test]
    fn deterministic() {
        let mut a = step_edge();
        let mut b = step_edge();
        deblock_plane(&mut a, 8, Qp::new(30));
        deblock_plane(&mut b, 8, Qp::new(30));
        assert_eq!(a, b);
    }
}
