//! Whole-frame encoding and decoding.
//!
//! [`encode_frame`] and [`decode_frame`] walk the identical superblock
//! syntax; the encoder makes mode decisions and writes symbols, the
//! decoder reads symbols and replays the reconstruction. Both end with
//! the same in-loop deblocking pass, so the encoder's reconstruction
//! (used as the next frame's reference) equals the decoder's output
//! bit-for-bit — the determinism the paper's golden-transcode fault
//! screening depends on (§4.4).

use crate::block::{compute_residual, decode_tile, encode_tile, for_each_tile, TileScratch};
use crate::config::EncoderConfig;
use crate::deblock::deblock_plane;
use crate::entropy::{read_int, read_uint, write_int, write_uint, BoolDecoder, BoolEncoder};
use crate::intra::{IntraMode, IntraNeighbors};
use crate::models::Models;
use crate::motion::{mc_block, satd, search_scratch, MotionScratch, SearchParams, SearchResult};
use crate::stats::CodingStats;
use crate::types::{CodecError, FrameKind, MotionVector, Profile, Qp};
use std::collections::HashMap;
use vcu_media::{Frame, Plane};

/// Reference-slot file: LAST / GOLDEN / ALTREF.
#[derive(Debug, Clone, Default)]
pub struct RefSlots {
    slots: [Option<Frame>; 3],
}

impl RefSlots {
    /// Empty slot file.
    pub fn new() -> Self {
        RefSlots::default()
    }

    /// References available to `profile`, in slot order. The H.264-like
    /// profile sees at most one (LAST).
    pub fn available(&self, profile: Profile) -> Vec<&Frame> {
        self.slots
            .iter()
            .take(profile.max_references())
            .filter_map(|s| s.as_ref())
            .collect()
    }

    /// Applies the refresh rule for a coded frame of `kind`.
    pub fn apply_refresh(&mut self, kind: FrameKind, recon: &Frame) {
        match kind {
            FrameKind::Key => {
                self.slots = [
                    Some(recon.clone()),
                    Some(recon.clone()),
                    Some(recon.clone()),
                ];
            }
            FrameKind::Inter => self.slots[0] = Some(recon.clone()),
            FrameKind::AltRef => self.slots[2] = Some(recon.clone()),
        }
    }
}

/// Deblocking grid per profile (the transform granularity).
fn deblock_grid(profile: Profile) -> usize {
    match profile {
        Profile::H264Sim => 8,
        Profile::Vp9Sim => 16,
    }
}

/// Maximum transform size per profile.
fn max_tx(profile: Profile) -> usize {
    match profile {
        Profile::H264Sim => 8,
        Profile::Vp9Sim => 32,
    }
}

/// Intra modes per profile.
fn intra_modes(profile: Profile) -> &'static [IntraMode] {
    match profile {
        Profile::H264Sim => &IntraMode::H264_MODES,
        Profile::Vp9Sim => &IntraMode::VP9_MODES,
    }
}

/// Decides whether a residual block prefers the half-size transform:
/// when residual energy is concentrated in a few sub-tiles (sharp
/// edges, sprite boundaries), the big transform smears it across many
/// coefficients; a heterogeneity test catches exactly that case.
fn tx_split_heuristic(residual: &[i16], bw: usize, bh: usize, t: usize, qp: Qp) -> bool {
    let half = t / 2;
    let mut max_mad = 0.0f64;
    let mut sum_mad = 0.0f64;
    let mut n_tiles = 0u32;
    let mut ty = 0;
    while ty < bh {
        let th = half.min(bh - ty);
        let mut tx = 0;
        while tx < bw {
            let tw = half.min(bw - tx);
            let mut acc = 0u64;
            for r in 0..th {
                for c in 0..tw {
                    acc += residual[(ty + r) * bw + tx + c].unsigned_abs() as u64;
                }
            }
            let mad = acc as f64 / (tw * th) as f64;
            max_mad = max_mad.max(mad);
            sum_mad += mad;
            n_tiles += 1;
            tx += half;
        }
        ty += half;
    }
    if n_tiles < 2 {
        return false;
    }
    let mean_mad = sum_mad / n_tiles as f64;
    // Heterogeneous residual that actually matters at this QP.
    max_mad > 2.5 * (mean_mad + 0.5) && max_mad > qp.step() * 0.25
}

/// Estimated syntax bits for coding `mv` against `pred` (RDO pricing).
fn mv_bits_estimate(mv: MotionVector, pred: MotionVector) -> f64 {
    let dx = (mv.x - pred.x).unsigned_abs() as f64;
    let dy = (mv.y - pred.y).unsigned_abs() as f64;
    4.0 + 2.0 * ((dx + 1.0).log2() + (dy + 1.0).log2())
}

/// Frame-level scratch arena for the encoder: every per-block buffer
/// the hot path needs, allocated once and grown to the largest block
/// seen. Removes all heap allocation from the superblock walk.
#[derive(Debug, Default)]
struct EncScratch {
    /// Current-block pixels (should_split / code_leaf / chroma).
    cur_blk: Vec<u8>,
    /// Final prediction for the block being coded.
    pred: Vec<u8>,
    /// Second prediction for compound averaging.
    pred2: Vec<u8>,
    /// Mode-decision prediction candidates.
    mode_pred: Vec<u8>,
    mode_p1: Vec<u8>,
    mode_p2: Vec<u8>,
    /// Spatial residual of the block.
    residual: Vec<i16>,
    /// Residual gathered for one tile.
    tile_res: Vec<i16>,
    /// Reconstructed block pixels before write-back.
    recon_blk: Vec<u8>,
    /// Tile transform/quantize/entropy buffers.
    tile: TileScratch,
    /// Motion-search buffers.
    motion: MotionScratch,
}

/// Decoder-side scratch arena, mirroring [`EncScratch`] for the
/// (smaller) set of buffers the decode walk needs.
#[derive(Debug, Default)]
struct DecScratch {
    pred: Vec<u8>,
    pred2: Vec<u8>,
    recon_blk: Vec<u8>,
    tile: TileScratch,
}

/// Key identifying one motion search: block geometry, predictor seed
/// and search parameters. Only reference slot 0 is cached (the slot
/// both `should_split` and the leaf mode decision query), so the slot
/// index is not part of the key.
type SearchKey = (usize, usize, usize, usize, i16, i16, SearchParams);

/// Multiply-xor hasher for the search memo. The memo is keyed by small
/// integer tuples, looked up and inserted but never iterated, so hash
/// quality only affects bucket distribution — never output bytes — and
/// SipHash's keyed-DoS resistance buys nothing here while costing ~5%
/// of the whole encode in the default hasher.
#[derive(Default)]
struct SearchKeyHasher {
    hash: u64,
}

impl std::hash::Hasher for SearchKeyHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.write_u64(v as u16 as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[derive(Default, Clone)]
struct SearchKeyHash;

impl std::hash::BuildHasher for SearchKeyHash {
    type Hasher = SearchKeyHasher;
    #[inline]
    fn build_hasher(&self) -> SearchKeyHasher {
        SearchKeyHasher::default()
    }
}

/// A leaf-block coding decision.
#[derive(Debug, Clone)]
enum BlockMode {
    Intra(IntraMode),
    Inter {
        ref_idx: usize,
        mv: MotionVector,
        compound: Option<(usize, MotionVector)>,
    },
}

/// Encodes one frame. Returns the arithmetic payload and the
/// reconstruction (post-deblock) that becomes reference state.
pub fn encode_frame(
    cfg: &EncoderConfig,
    cur: &Frame,
    kind: FrameKind,
    qp: Qp,
    refs: &RefSlots,
    stats: &mut CodingStats,
) -> (Vec<u8>, Frame) {
    let mut fe = FrameEnc {
        cfg,
        cur,
        refs: if kind == FrameKind::Key {
            Vec::new()
        } else {
            refs.available(cfg.profile)
        },
        qp,
        enc: BoolEncoder::new(),
        models: Models::new(),
        recon: Frame::new(cur.width(), cur.height()),
        last_mv: MotionVector::ZERO,
        search: cfg.toolset.search_params(),
        stats,
        scratch: EncScratch::default(),
        search_cache: HashMap::with_capacity_and_hasher(1024, SearchKeyHash),
    };

    let sb = cfg.profile.superblock_size();
    let (w, h) = (cur.width(), cur.height());
    let mut y = 0;
    while y < h {
        let mut x = 0;
        while x < w {
            fe.code_block(x, y, sb, 0);
            x += sb;
        }
        y += sb;
    }

    // In-loop deblocking (identical on the decoder side).
    let grid = deblock_grid(cfg.profile);
    let touched = deblock_plane(fe.recon.y_mut(), grid, qp);
    fe.stats.deblock_pixels += touched;

    fe.stats.pixels += (w * h) as u64;
    fe.stats.frames += 1;
    let payload = fe.enc.finish();
    fe.stats.bits += payload.len() as u64 * 8;
    let recon = fe.recon;
    (payload, recon)
}

struct FrameEnc<'a> {
    cfg: &'a EncoderConfig,
    cur: &'a Frame,
    refs: Vec<&'a Frame>,
    qp: Qp,
    enc: BoolEncoder,
    models: Models,
    recon: Frame,
    last_mv: MotionVector,
    search: SearchParams,
    stats: &'a mut CodingStats,
    scratch: EncScratch,
    /// Per-frame motion-search memo for reference slot 0. The split
    /// heuristic and the leaf mode decision run the identical search;
    /// the cache stores the result *and* the exact `CodingStats` delta
    /// the live search charged, replaying it on a hit so metering (and
    /// thus the chip timing model) is byte-identical to searching twice.
    search_cache: HashMap<SearchKey, (SearchResult, CodingStats), SearchKeyHash>,
}

impl FrameEnc<'_> {
    /// Motion search through the per-frame memo. Cache hits replay the
    /// recorded stats delta; misses run the real search and record it.
    /// Only reference slot 0 participates — other slots always search.
    fn cached_search(
        &mut self,
        ref_idx: usize,
        x: usize,
        y: usize,
        bw: usize,
        bh: usize,
        params: &SearchParams,
    ) -> SearchResult {
        let key = (x, y, bw, bh, self.last_mv.x, self.last_mv.y, *params);
        if ref_idx == 0 {
            if let Some(&(r, delta)) = self.search_cache.get(&key) {
                *self.stats += delta;
                return r;
            }
        }
        let before = *self.stats;
        let r = search_scratch(
            self.refs[ref_idx].y(),
            self.cur.y(),
            x,
            y,
            bw,
            bh,
            self.last_mv,
            params,
            self.stats,
            &mut self.scratch.motion,
        );
        if ref_idx == 0 {
            self.search_cache.insert(key, (r, *self.stats - before));
        }
        r
    }

    fn code_block(&mut self, x: usize, y: usize, size: usize, depth: usize) {
        let (w, h) = (self.cur.width(), self.cur.height());
        if x >= w || y >= h {
            return;
        }
        if size > 16 {
            let split = self.should_split(x, y, size);
            self.models
                .partition
                .encode(&mut self.enc, depth.min(1), split);
            if split {
                let half = size / 2;
                self.code_block(x, y, half, depth + 1);
                self.code_block(x + half, y, half, depth + 1);
                self.code_block(x, y + half, half, depth + 1);
                self.code_block(x + half, y + half, half, depth + 1);
                return;
            }
        }
        self.code_leaf(x, y, size);
    }

    /// Bounded recursive partition heuristic (paper §3.2): split when
    /// the whole-block match is poor relative to the quantizer scale.
    fn should_split(&mut self, x: usize, y: usize, size: usize) -> bool {
        let (w, h) = (self.cur.width(), self.cur.height());
        let bw = size.min(w - x);
        let bh = size.min(h - y);
        // Blocks straddling the frame edge always split for tighter fit.
        if bw < size || bh < size {
            return true;
        }
        if self.refs.is_empty() {
            // Intra frame: split when spatial variance is high.
            let blk = &mut self.scratch.cur_blk;
            blk.clear();
            blk.resize(bw * bh, 0);
            self.cur
                .y()
                .copy_block_clamped(x as isize, y as isize, bw, bh, blk);
            let mean = blk.iter().map(|&v| v as u64).sum::<u64>() / blk.len() as u64;
            let mad: u64 = blk
                .iter()
                .map(|&v| (v as i64 - mean as i64).unsigned_abs())
                .sum();
            return mad as f64 / (bw * bh) as f64 > self.qp.step() * 0.75;
        }
        // Inter: the paper's "bounded recursive search" — compare the
        // whole-block motion-compensated SAD against the sum of the
        // four sub-blocks' independent searches plus the syntax
        // overhead of coding three extra modes/MVs. Multi-motion
        // content (several sprites in one superblock) splits; uniform
        // pans keep large blocks. Both the whole-block and quadrant
        // searches go through the memo: the quadrant results are what
        // the next partition level (and ultimately the leaf mode
        // decision) re-requests.
        let bounded = SearchParams::hardware();
        let whole = self.cached_search(0, x, y, bw, bh, &bounded).sad;
        let half = size / 2;
        let (w, h) = (self.cur.width(), self.cur.height());
        let mut subs = 0u64;
        for (qx, qy) in [(x, y), (x + half, y), (x, y + half), (x + half, y + half)] {
            if qx >= w || qy >= h {
                continue;
            }
            let sbw = half.min(w - qx);
            let sbh = half.min(h - qy);
            subs += self.cached_search(0, qx, qy, sbw, sbh, &bounded).sad;
        }
        let lambda_sad = 0.9 * self.qp.step() * self.cfg.toolset.lambda_scale();
        let split_overhead_bits = 36.0; // three extra mode/MV sets
        (subs as f64 + lambda_sad * split_overhead_bits) < whole as f64
    }

    fn code_leaf(&mut self, x: usize, y: usize, size: usize) {
        let (w, h) = (self.cur.width(), self.cur.height());
        let bw = size.min(w - x);
        let bh = size.min(h - y);
        // Buffers crossing `&mut self` calls are taken out of the arena
        // and restored at the end (no allocation either way).
        let mut cur_blk = std::mem::take(&mut self.scratch.cur_blk);
        cur_blk.clear();
        cur_blk.resize(bw * bh, 0);
        self.cur
            .y()
            .copy_block_clamped(x as isize, y as isize, bw, bh, &mut cur_blk);

        let mode = self.choose_mode(x, y, bw, bh, &cur_blk);

        // Syntax: inter flag (when inter is possible), then mode details.
        if !self.refs.is_empty() {
            let is_inter = matches!(mode, BlockMode::Inter { .. });
            self.models.is_inter.encode(&mut self.enc, 0, is_inter);
        }
        let mut pred = std::mem::take(&mut self.scratch.pred);
        pred.clear();
        pred.resize(bw * bh, 0);
        match &mode {
            BlockMode::Intra(m) => {
                write_uint(
                    &mut self.enc,
                    &mut self.models.intra_mode,
                    0,
                    m.index() as u32,
                );
                self.stats.intra_blocks += 1;
                self.stats.intra_pixels += (bw * bh) as u64;
                let n = IntraNeighbors::gather(self.recon.y(), x, y, bw, bh);
                n.predict(*m, &mut pred);
            }
            BlockMode::Inter {
                ref_idx,
                mv,
                compound,
            } => {
                write_uint(&mut self.enc, &mut self.models.ref_idx, 0, *ref_idx as u32);
                write_int(
                    &mut self.enc,
                    &mut self.models.mv_x,
                    0,
                    (mv.x - self.last_mv.x) as i32,
                );
                write_int(
                    &mut self.enc,
                    &mut self.models.mv_y,
                    0,
                    (mv.y - self.last_mv.y) as i32,
                );
                if self.cfg.profile.supports_compound() && self.refs.len() >= 2 {
                    self.models
                        .compound
                        .encode(&mut self.enc, 0, compound.is_some());
                    if let Some((r2, mv2)) = compound {
                        write_uint(&mut self.enc, &mut self.models.ref_idx, 4, *r2 as u32);
                        write_int(
                            &mut self.enc,
                            &mut self.models.mv_x,
                            4,
                            (mv2.x - mv.x) as i32,
                        );
                        write_int(
                            &mut self.enc,
                            &mut self.models.mv_y,
                            4,
                            (mv2.y - mv.y) as i32,
                        );
                    }
                }
                self.stats.inter_blocks += 1;
                self.stats.mc_pixels += (bw * bh) as u64;
                mc_block(self.refs[*ref_idx].y(), x, y, *mv, bw, bh, &mut pred);
                if let Some((r2, mv2)) = compound {
                    let p2 = &mut self.scratch.pred2;
                    p2.clear();
                    p2.resize(bw * bh, 0);
                    mc_block(self.refs[*r2].y(), x, y, *mv2, bw, bh, p2);
                    self.stats.mc_pixels += (bw * bh) as u64;
                    crate::kernels::avg_u8_inplace(&mut pred, p2);
                }
                self.last_mv = *mv;
            }
        };

        // Luma residual with adaptive transform size: sharp, spatially
        // concentrated residuals prefer the smaller transform (VP9's
        // adaptive TX size; H.264 High's 8x8/4x4 choice).
        let t_full = size.min(max_tx(self.cfg.profile));
        let mut residual = std::mem::take(&mut self.scratch.residual);
        residual.clear();
        residual.resize(bw * bh, 0);
        compute_residual(&cur_blk, &pred, &mut residual);
        let t = if t_full > 4 {
            let split_tx = tx_split_heuristic(&residual, bw, bh, t_full, self.qp);
            self.models
                .tx_split
                .encode(&mut self.enc, crate::models::tx_class(t_full), split_tx);
            if split_tx {
                t_full / 2
            } else {
                t_full
            }
        } else {
            t_full
        };
        let deadzone = self.cfg.toolset.deadzone();
        let trellis = self.cfg.toolset.trellis();
        let mut recon_blk = std::mem::take(&mut self.scratch.recon_blk);
        recon_blk.clear();
        recon_blk.resize(bw * bh, 0);
        {
            let enc = &mut self.enc;
            let models = &mut self.models;
            let stats = &mut *self.stats;
            let qp = self.qp;
            let EncScratch { tile, tile_res, .. } = &mut self.scratch;
            for_each_tile(bw, bh, t, |tx, ty, tw, th| {
                tile_res.clear();
                tile_res.resize(tw * th, 0);
                for r in 0..th {
                    for c in 0..tw {
                        tile_res[r * tw + c] = residual[(ty + r) * bw + tx + c];
                    }
                }
                encode_tile(
                    enc, models, tile_res, tw, th, t, qp, deadzone, trellis, stats, tile,
                );
                for r in 0..th {
                    let row = (ty + r) * bw + tx;
                    crate::kernels::add_residual_clamp(
                        &pred[row..row + tw],
                        &tile.recon[r * tw..(r + 1) * tw],
                        &mut recon_blk[row..row + tw],
                    );
                }
            });
        }
        self.recon.y_mut().write_block(x, y, bw, bh, &recon_blk);
        self.scratch.cur_blk = cur_blk;
        self.scratch.pred = pred;
        self.scratch.residual = residual;
        self.scratch.recon_blk = recon_blk;

        // Chroma planes.
        self.code_leaf_chroma(x, y, bw, bh, &mode);
    }

    fn code_leaf_chroma(&mut self, x: usize, y: usize, bw: usize, bh: usize, mode: &BlockMode) {
        let (cx, cy) = (x / 2, y / 2);
        let cbw = bw.div_ceil(2);
        let cbh = bh.div_ceil(2);
        let t = (bw.min(bh).next_power_of_two().min(max_tx(self.cfg.profile)) / 2).max(4);
        let deadzone = self.cfg.toolset.deadzone();
        let chroma_qp = self.qp.offset(2); // chroma slightly coarser
        let mut cur_blk = std::mem::take(&mut self.scratch.cur_blk);
        let mut pred = std::mem::take(&mut self.scratch.pred);
        let mut residual = std::mem::take(&mut self.scratch.residual);
        let mut recon_blk = std::mem::take(&mut self.scratch.recon_blk);
        for plane_idx in 0..2 {
            let (cur_p, refs_p): (&Plane, Vec<&Plane>) = if plane_idx == 0 {
                (self.cur.u(), self.refs.iter().map(|f| f.u()).collect())
            } else {
                (self.cur.v(), self.refs.iter().map(|f| f.v()).collect())
            };
            cur_blk.clear();
            cur_blk.resize(cbw * cbh, 0);
            cur_p.copy_block_clamped(cx as isize, cy as isize, cbw, cbh, &mut cur_blk);

            pred.clear();
            pred.resize(cbw * cbh, 0);
            match mode {
                BlockMode::Intra(m) => {
                    let recon_p = if plane_idx == 0 {
                        self.recon.u()
                    } else {
                        self.recon.v()
                    };
                    let n = IntraNeighbors::gather(recon_p, cx, cy, cbw, cbh);
                    n.predict(*m, &mut pred);
                }
                BlockMode::Inter {
                    ref_idx,
                    mv,
                    compound,
                } => {
                    let cmv = MotionVector::new(mv.x / 2, mv.y / 2);
                    mc_block(refs_p[*ref_idx], cx, cy, cmv, cbw, cbh, &mut pred);
                    if let Some((r2, mv2)) = compound {
                        let cmv2 = MotionVector::new(mv2.x / 2, mv2.y / 2);
                        let p2 = &mut self.scratch.pred2;
                        p2.clear();
                        p2.resize(cbw * cbh, 0);
                        mc_block(refs_p[*r2], cx, cy, cmv2, cbw, cbh, p2);
                        crate::kernels::avg_u8_inplace(&mut pred, p2);
                    }
                    self.stats.mc_pixels += (cbw * cbh) as u64;
                }
            };

            residual.clear();
            residual.resize(cbw * cbh, 0);
            compute_residual(&cur_blk, &pred, &mut residual);
            recon_blk.clear();
            recon_blk.resize(cbw * cbh, 0);
            {
                let enc = &mut self.enc;
                let models = &mut self.models;
                let stats = &mut *self.stats;
                let EncScratch { tile, tile_res, .. } = &mut self.scratch;
                for_each_tile(cbw, cbh, t, |tx, ty, tw, th| {
                    tile_res.clear();
                    tile_res.resize(tw * th, 0);
                    for r in 0..th {
                        for c in 0..tw {
                            tile_res[r * tw + c] = residual[(ty + r) * cbw + tx + c];
                        }
                    }
                    encode_tile(
                        enc, models, tile_res, tw, th, t, chroma_qp, deadzone, false, stats, tile,
                    );
                    for r in 0..th {
                        let row = (ty + r) * cbw + tx;
                        crate::kernels::add_residual_clamp(
                            &pred[row..row + tw],
                            &tile.recon[r * tw..(r + 1) * tw],
                            &mut recon_blk[row..row + tw],
                        );
                    }
                });
            }
            if plane_idx == 0 {
                self.recon.u_mut().write_block(cx, cy, cbw, cbh, &recon_blk);
            } else {
                self.recon.v_mut().write_block(cx, cy, cbw, cbh, &recon_blk);
            }
        }
        self.scratch.cur_blk = cur_blk;
        self.scratch.pred = pred;
        self.scratch.residual = residual;
        self.scratch.recon_blk = recon_blk;
    }

    fn choose_mode(
        &mut self,
        x: usize,
        y: usize,
        bw: usize,
        bh: usize,
        cur_blk: &[u8],
    ) -> BlockMode {
        let lambda_sad = 0.9 * self.qp.step() * self.cfg.toolset.lambda_scale();
        let use_satd = self.cfg.toolset.satd_ranking();
        let metric = |cur: &[u8], pred: &[u8], stats: &mut CodingStats| -> u64 {
            if use_satd {
                stats.sad_pixels += 2 * (bw * bh) as u64; // SATD ~2x SAD cost
                satd(cur, pred, bw, bh)
            } else {
                crate::kernels::sad_slice(pred, cur)
            }
        };

        // Intra candidates.
        let mut best_intra: Option<(IntraMode, u64)> = None;
        let neighbors = IntraNeighbors::gather(self.recon.y(), x, y, bw, bh);
        let mut pred_buf = std::mem::take(&mut self.scratch.mode_pred);
        pred_buf.clear();
        pred_buf.resize(bw * bh, 0);
        for &m in intra_modes(self.cfg.profile) {
            neighbors.predict(m, &mut pred_buf);
            self.stats.intra_pixels += (bw * bh) as u64;
            let sad: u64 = metric(cur_blk, &pred_buf, self.stats);
            if best_intra.is_none_or(|(_, s)| sad < s) {
                best_intra = Some((m, sad));
            }
        }
        self.scratch.mode_pred = pred_buf;
        let (intra_mode, intra_sad) = best_intra.expect("at least one intra mode");
        let intra_cost = intra_sad as f64 + lambda_sad * 4.0;

        if self.refs.is_empty() {
            return BlockMode::Intra(intra_mode);
        }

        // Inter candidates: one search per reference (slot 0 through
        // the memo, where the split heuristic usually primed it).
        let sp = self.search;
        let mut per_ref = Vec::with_capacity(self.refs.len());
        for ri in 0..self.refs.len() {
            per_ref.push(self.cached_search(ri, x, y, bw, bh, &sp));
        }
        let (best_ri, best_r) = per_ref
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.sad)
            .map(|(i, r)| (i, *r))
            .expect("non-empty refs");
        let inter_metric = if use_satd {
            let mut p = std::mem::take(&mut self.scratch.mode_p1);
            p.clear();
            p.resize(bw * bh, 0);
            mc_block(self.refs[best_ri].y(), x, y, best_r.mv, bw, bh, &mut p);
            let m = metric(cur_blk, &p, self.stats);
            self.scratch.mode_p1 = p;
            m
        } else {
            best_r.sad
        };
        let inter_cost =
            inter_metric as f64 + lambda_sad * (2.0 + mv_bits_estimate(best_r.mv, self.last_mv));

        // Compound: average the two best references.
        let mut compound_choice: Option<((usize, MotionVector), f64)> = None;
        if self.cfg.profile.supports_compound() && self.refs.len() >= 2 {
            let mut order: Vec<usize> = (0..per_ref.len()).collect();
            order.sort_by_key(|&i| per_ref[i].sad);
            let (r1, r2) = (order[0], order[1]);
            if r1 != r2 {
                let mut p1 = std::mem::take(&mut self.scratch.mode_p1);
                let mut p2 = std::mem::take(&mut self.scratch.mode_p2);
                p1.clear();
                p1.resize(bw * bh, 0);
                p2.clear();
                p2.resize(bw * bh, 0);
                mc_block(self.refs[r1].y(), x, y, per_ref[r1].mv, bw, bh, &mut p1);
                mc_block(self.refs[r2].y(), x, y, per_ref[r2].mv, bw, bh, &mut p2);
                self.stats.mc_pixels += 2 * (bw * bh) as u64;
                crate::kernels::avg_u8_inplace(&mut p1, &p2);
                let sad: u64 = metric(cur_blk, &p1, self.stats);
                self.scratch.mode_p1 = p1;
                self.scratch.mode_p2 = p2;
                let cost = sad as f64
                    + lambda_sad
                        * (3.0
                            + mv_bits_estimate(per_ref[r1].mv, self.last_mv)
                            + mv_bits_estimate(per_ref[r2].mv, per_ref[r1].mv));
                if best_ri == r1 && cost < inter_cost {
                    compound_choice = Some(((r2, per_ref[r2].mv), cost));
                }
            }
        }

        let best_inter_cost = compound_choice.map_or(inter_cost, |(_, c)| c.min(inter_cost));
        if best_inter_cost <= intra_cost {
            BlockMode::Inter {
                ref_idx: best_ri,
                mv: best_r.mv,
                compound: compound_choice
                    .filter(|(_, c)| *c < inter_cost)
                    .map(|(pair, _)| pair),
            }
        } else {
            BlockMode::Intra(intra_mode)
        }
    }
}

/// Decodes one frame payload into its reconstruction.
///
/// # Errors
///
/// Returns [`CodecError::CorruptBitstream`] if syntax elements are out
/// of range (truncated/corrupted payloads).
#[allow(clippy::too_many_arguments)]
pub fn decode_frame(
    profile: Profile,
    payload: &[u8],
    kind: FrameKind,
    qp: Qp,
    refs: &RefSlots,
    width: usize,
    height: usize,
    stats: &mut CodingStats,
) -> Result<Frame, CodecError> {
    let mut fd = FrameDec {
        profile,
        dec: BoolDecoder::new(payload),
        models: Models::new(),
        refs: if kind == FrameKind::Key {
            Vec::new()
        } else {
            refs.available(profile)
        },
        qp,
        recon: Frame::new(width, height),
        last_mv: MotionVector::ZERO,
        stats,
        scratch: DecScratch::default(),
    };
    let sb = profile.superblock_size();
    let mut y = 0;
    while y < height {
        let mut x = 0;
        while x < width {
            fd.code_block(x, y, sb, 0)?;
            x += sb;
        }
        y += sb;
    }
    if fd.dec.overrun() {
        return Err(CodecError::CorruptBitstream("payload truncated"));
    }
    let grid = deblock_grid(profile);
    let touched = deblock_plane(fd.recon.y_mut(), grid, qp);
    fd.stats.deblock_pixels += touched;
    fd.stats.pixels += (width * height) as u64;
    fd.stats.frames += 1;
    Ok(fd.recon)
}

struct FrameDec<'a> {
    profile: Profile,
    dec: BoolDecoder<'a>,
    models: Models,
    refs: Vec<&'a Frame>,
    qp: Qp,
    recon: Frame,
    last_mv: MotionVector,
    stats: &'a mut CodingStats,
    scratch: DecScratch,
}

impl FrameDec<'_> {
    fn code_block(
        &mut self,
        x: usize,
        y: usize,
        size: usize,
        depth: usize,
    ) -> Result<(), CodecError> {
        let (w, h) = (self.recon.width(), self.recon.height());
        if x >= w || y >= h {
            return Ok(());
        }
        if size > 16 {
            let split = self.models.partition.decode(&mut self.dec, depth.min(1));
            if split {
                let half = size / 2;
                self.code_block(x, y, half, depth + 1)?;
                self.code_block(x + half, y, half, depth + 1)?;
                self.code_block(x, y + half, half, depth + 1)?;
                self.code_block(x + half, y + half, half, depth + 1)?;
                return Ok(());
            }
        }
        self.code_leaf(x, y, size)
    }

    fn code_leaf(&mut self, x: usize, y: usize, size: usize) -> Result<(), CodecError> {
        let (w, h) = (self.recon.width(), self.recon.height());
        let bw = size.min(w - x);
        let bh = size.min(h - y);

        let is_inter = if self.refs.is_empty() {
            false
        } else {
            self.models.is_inter.decode(&mut self.dec, 0)
        };

        let mode = if is_inter {
            let ref_idx = read_uint(&mut self.dec, &mut self.models.ref_idx, 0) as usize;
            if ref_idx >= self.refs.len() {
                return Err(CodecError::CorruptBitstream("reference index out of range"));
            }
            let dx = read_int(&mut self.dec, &mut self.models.mv_x, 0);
            let dy = read_int(&mut self.dec, &mut self.models.mv_y, 0);
            let mv = MotionVector::new(
                (self.last_mv.x as i32 + dx).clamp(i16::MIN as i32, i16::MAX as i32) as i16,
                (self.last_mv.y as i32 + dy).clamp(i16::MIN as i32, i16::MAX as i32) as i16,
            );
            let compound = if self.profile.supports_compound() && self.refs.len() >= 2 {
                if self.models.compound.decode(&mut self.dec, 0) {
                    let r2 = read_uint(&mut self.dec, &mut self.models.ref_idx, 4) as usize;
                    if r2 >= self.refs.len() {
                        return Err(CodecError::CorruptBitstream("compound ref out of range"));
                    }
                    let dx2 = read_int(&mut self.dec, &mut self.models.mv_x, 4);
                    let dy2 = read_int(&mut self.dec, &mut self.models.mv_y, 4);
                    let mv2 = MotionVector::new(
                        (mv.x as i32 + dx2).clamp(i16::MIN as i32, i16::MAX as i32) as i16,
                        (mv.y as i32 + dy2).clamp(i16::MIN as i32, i16::MAX as i32) as i16,
                    );
                    Some((r2, mv2))
                } else {
                    None
                }
            } else {
                None
            };
            self.last_mv = mv;
            self.stats.inter_blocks += 1;
            BlockMode::Inter {
                ref_idx,
                mv,
                compound,
            }
        } else {
            let idx = read_uint(&mut self.dec, &mut self.models.intra_mode, 0) as usize;
            let m = IntraMode::from_index(idx)
                .ok_or(CodecError::CorruptBitstream("intra mode out of range"))?;
            self.stats.intra_blocks += 1;
            BlockMode::Intra(m)
        };

        // Luma prediction.
        let mut pred = std::mem::take(&mut self.scratch.pred);
        pred.clear();
        pred.resize(bw * bh, 0);
        match &mode {
            BlockMode::Intra(m) => {
                let n = IntraNeighbors::gather(self.recon.y(), x, y, bw, bh);
                n.predict(*m, &mut pred);
                self.stats.intra_pixels += (bw * bh) as u64;
            }
            BlockMode::Inter {
                ref_idx,
                mv,
                compound,
            } => {
                mc_block(self.refs[*ref_idx].y(), x, y, *mv, bw, bh, &mut pred);
                self.stats.mc_pixels += (bw * bh) as u64;
                if let Some((r2, mv2)) = compound {
                    let p2 = &mut self.scratch.pred2;
                    p2.clear();
                    p2.resize(bw * bh, 0);
                    mc_block(self.refs[*r2].y(), x, y, *mv2, bw, bh, p2);
                    self.stats.mc_pixels += (bw * bh) as u64;
                    crate::kernels::avg_u8_inplace(&mut pred, p2);
                }
            }
        };

        // Luma residual: read the adaptive transform-size flag.
        let t_full = size.min(max_tx(self.profile));
        let t = if t_full > 4 {
            let split_tx = self
                .models
                .tx_split
                .decode(&mut self.dec, crate::models::tx_class(t_full));
            if split_tx {
                t_full / 2
            } else {
                t_full
            }
        } else {
            t_full
        };
        let mut recon_blk = std::mem::take(&mut self.scratch.recon_blk);
        recon_blk.clear();
        recon_blk.resize(bw * bh, 0);
        {
            let models = &mut self.models;
            let dec = &mut self.dec;
            let stats = &mut *self.stats;
            let qp = self.qp;
            let tile = &mut self.scratch.tile;
            for_each_tile(bw, bh, t, |tx, ty, tw, th| {
                decode_tile(dec, models, tw, th, t, qp, stats, tile);
                for r in 0..th {
                    let row = (ty + r) * bw + tx;
                    crate::kernels::add_residual_clamp(
                        &pred[row..row + tw],
                        &tile.recon[r * tw..(r + 1) * tw],
                        &mut recon_blk[row..row + tw],
                    );
                }
            });
        }
        self.recon.y_mut().write_block(x, y, bw, bh, &recon_blk);
        self.scratch.pred = pred;
        self.scratch.recon_blk = recon_blk;

        // Chroma.
        self.code_leaf_chroma(x, y, bw, bh, &mode);
        Ok(())
    }

    fn code_leaf_chroma(&mut self, x: usize, y: usize, bw: usize, bh: usize, mode: &BlockMode) {
        let (cx, cy) = (x / 2, y / 2);
        let cbw = bw.div_ceil(2);
        let cbh = bh.div_ceil(2);
        let t = (bw.min(bh).next_power_of_two().min(max_tx(self.profile)) / 2).max(4);
        let chroma_qp = self.qp.offset(2);
        let mut pred = std::mem::take(&mut self.scratch.pred);
        let mut recon_blk = std::mem::take(&mut self.scratch.recon_blk);
        for plane_idx in 0..2 {
            let refs_p: Vec<&Plane> = if plane_idx == 0 {
                self.refs.iter().map(|f| f.u()).collect()
            } else {
                self.refs.iter().map(|f| f.v()).collect()
            };
            pred.clear();
            pred.resize(cbw * cbh, 0);
            match mode {
                BlockMode::Intra(m) => {
                    let recon_p = if plane_idx == 0 {
                        self.recon.u()
                    } else {
                        self.recon.v()
                    };
                    let n = IntraNeighbors::gather(recon_p, cx, cy, cbw, cbh);
                    n.predict(*m, &mut pred);
                }
                BlockMode::Inter {
                    ref_idx,
                    mv,
                    compound,
                } => {
                    let cmv = MotionVector::new(mv.x / 2, mv.y / 2);
                    mc_block(refs_p[*ref_idx], cx, cy, cmv, cbw, cbh, &mut pred);
                    if let Some((r2, mv2)) = compound {
                        let cmv2 = MotionVector::new(mv2.x / 2, mv2.y / 2);
                        let p2 = &mut self.scratch.pred2;
                        p2.clear();
                        p2.resize(cbw * cbh, 0);
                        mc_block(refs_p[*r2], cx, cy, cmv2, cbw, cbh, p2);
                        crate::kernels::avg_u8_inplace(&mut pred, p2);
                    }
                    self.stats.mc_pixels += (cbw * cbh) as u64;
                }
            };

            recon_blk.clear();
            recon_blk.resize(cbw * cbh, 0);
            {
                let models = &mut self.models;
                let dec = &mut self.dec;
                let stats = &mut *self.stats;
                let tile = &mut self.scratch.tile;
                for_each_tile(cbw, cbh, t, |tx, ty, tw, th| {
                    decode_tile(dec, models, tw, th, t, chroma_qp, stats, tile);
                    for r in 0..th {
                        let row = (ty + r) * cbw + tx;
                        crate::kernels::add_residual_clamp(
                            &pred[row..row + tw],
                            &tile.recon[r * tw..(r + 1) * tw],
                            &mut recon_blk[row..row + tw],
                        );
                    }
                });
            }
            if plane_idx == 0 {
                self.recon.u_mut().write_block(cx, cy, cbw, cbh, &recon_blk);
            } else {
                self.recon.v_mut().write_block(cx, cy, cbw, cbh, &recon_blk);
            }
        }
        self.scratch.pred = pred;
        self.scratch.recon_blk = recon_blk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;
    use vcu_media::synth::{ContentClass, SynthSpec};
    use vcu_media::{quality::psnr_y, Resolution};

    fn test_video(frames: usize) -> vcu_media::Video {
        SynthSpec::new(Resolution::R144, frames, ContentClass::ugc(), 11).generate()
    }

    fn calm_video(frames: usize) -> vcu_media::Video {
        SynthSpec::new(Resolution::R144, frames, ContentClass::talking_head(), 11).generate()
    }

    fn round_trip_one(profile: Profile, kind_chain: bool) {
        let video = test_video(3);
        let cfg = EncoderConfig::const_qp(profile, Qp::new(28));
        let mut refs = RefSlots::new();
        let mut stats = CodingStats::new();
        let mut dec_refs = RefSlots::new();
        let mut dstats = CodingStats::new();

        for (i, f) in video.frames.iter().enumerate() {
            let kind = if i == 0 || !kind_chain {
                FrameKind::Key
            } else {
                FrameKind::Inter
            };
            let (payload, recon) = encode_frame(&cfg, f, kind, Qp::new(28), &refs, &mut stats);
            let decoded = decode_frame(
                profile,
                &payload,
                kind,
                Qp::new(28),
                &dec_refs,
                f.width(),
                f.height(),
                &mut dstats,
            )
            .expect("decode");
            assert_eq!(recon, decoded, "frame {i} recon mismatch");
            refs.apply_refresh(kind, &recon);
            dec_refs.apply_refresh(kind, &decoded);
        }
    }

    #[test]
    fn h264_round_trip_inter_chain() {
        round_trip_one(Profile::H264Sim, true);
    }

    #[test]
    fn vp9_round_trip_inter_chain() {
        round_trip_one(Profile::Vp9Sim, true);
    }

    #[test]
    fn intra_only_round_trip() {
        round_trip_one(Profile::Vp9Sim, false);
    }

    #[test]
    fn quality_improves_with_lower_qp() {
        let video = test_video(1);
        let f = &video.frames[0];
        let mut psnrs = Vec::new();
        for qp in [10u8, 30, 50] {
            let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(qp));
            let mut stats = CodingStats::new();
            let refs = RefSlots::new();
            let (_, recon) = encode_frame(&cfg, f, FrameKind::Key, Qp::new(qp), &refs, &mut stats);
            psnrs.push(psnr_y(f, &recon));
        }
        assert!(
            psnrs[0] > psnrs[1] && psnrs[1] > psnrs[2],
            "PSNR not monotone in QP: {psnrs:?}"
        );
    }

    #[test]
    fn rate_decreases_with_higher_qp() {
        let video = test_video(1);
        let f = &video.frames[0];
        let mut sizes = Vec::new();
        for qp in [10u8, 30, 50] {
            let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(qp));
            let mut stats = CodingStats::new();
            let refs = RefSlots::new();
            let (payload, _) =
                encode_frame(&cfg, f, FrameKind::Key, Qp::new(qp), &refs, &mut stats);
            sizes.push(payload.len());
        }
        assert!(
            sizes[0] > sizes[1] && sizes[1] > sizes[2],
            "sizes not monotone: {sizes:?}"
        );
    }

    #[test]
    fn inter_frames_much_smaller_than_key() {
        let video = calm_video(2);
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(28));
        let mut refs = RefSlots::new();
        let mut stats = CodingStats::new();
        let (key_payload, recon) = encode_frame(
            &cfg,
            &video.frames[0],
            FrameKind::Key,
            Qp::new(28),
            &refs,
            &mut stats,
        );
        refs.apply_refresh(FrameKind::Key, &recon);
        let (inter_payload, _) = encode_frame(
            &cfg,
            &video.frames[1],
            FrameKind::Inter,
            Qp::new(28),
            &refs,
            &mut stats,
        );
        assert!(
            (inter_payload.len() as f64) < key_payload.len() as f64 * 0.7,
            "inter {} vs key {}",
            inter_payload.len(),
            key_payload.len()
        );
        assert!(stats.inter_blocks > 0);
    }

    #[test]
    fn corrupt_payload_detected_or_decodes_differently() {
        let video = test_video(1);
        let f = &video.frames[0];
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        let refs = RefSlots::new();
        let mut stats = CodingStats::new();
        let (mut payload, recon) =
            encode_frame(&cfg, f, FrameKind::Key, Qp::new(30), &refs, &mut stats);
        // Flip a byte mid-payload.
        let mid = payload.len() / 2;
        payload[mid] ^= 0xA5;
        let mut dstats = CodingStats::new();
        match decode_frame(
            Profile::H264Sim,
            &payload,
            FrameKind::Key,
            Qp::new(30),
            &refs,
            f.width(),
            f.height(),
            &mut dstats,
        ) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, recon, "corruption must not decode identically"),
        }
    }

    #[test]
    fn ref_slots_refresh_rules() {
        let f = Frame::new(16, 16);
        let mut slots = RefSlots::new();
        assert!(slots.available(Profile::Vp9Sim).is_empty());
        slots.apply_refresh(FrameKind::Key, &f);
        assert_eq!(slots.available(Profile::Vp9Sim).len(), 3);
        assert_eq!(slots.available(Profile::H264Sim).len(), 1);
        let mut g = Frame::new(16, 16);
        g.y_mut().fill(9);
        slots.apply_refresh(FrameKind::AltRef, &g);
        let avail = slots.available(Profile::Vp9Sim);
        assert_eq!(avail[2].y().get(0, 0), 9);
        assert_eq!(avail[0].y().get(0, 0), 0);
    }
}
