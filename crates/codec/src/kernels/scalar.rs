//! Portable scalar reference implementations of the pixel kernels.
//!
//! These are the semantics every SIMD backend must reproduce *bit for
//! bit* — each function here is the exact loop the codec ran before the
//! kernel layer existed (moved, not rewritten). Differential tests
//! sweep every backend against these; the golden bitstream pins hash
//! their outputs.

/// Plain sum of absolute differences over two equal-length slices.
pub(crate) fn sad_slice(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x as i32 - *y as i32).unsigned_abs() as u64)
        .sum()
}

/// Row-granular thresholded SAD over two `rows x bw` buffers.
///
/// Accumulates one full row at a time, then checks the running sum
/// against `threshold`, returning `(sad, pixels_examined)` the moment
/// it crosses. The exit check sits at *row* granularity — never
/// mid-row — so `pixels_examined` is always a multiple of `bw` and is
/// identical for every backend regardless of lane width.
pub(crate) fn sad_rows_thresholded(a: &[u8], b: &[u8], bw: usize, threshold: u64) -> (u64, u64) {
    debug_assert_eq!(a.len(), b.len());
    let mut sad = 0u64;
    let mut examined = 0u64;
    for (ra, rb) in a.chunks_exact(bw).zip(b.chunks_exact(bw)) {
        let mut acc = 0u64;
        for (x, y) in ra.iter().zip(rb) {
            acc += (*x as i32 - *y as i32).unsigned_abs() as u64;
        }
        sad += acc;
        examined += bw as u64;
        if sad >= threshold {
            return (sad, examined);
        }
    }
    (sad, examined)
}

/// Sum of absolute transformed differences over 8×8 Hadamard blocks;
/// partial edge blocks fall back to absolute differences. This is the
/// exact walk `motion::satd` ran before the kernel layer.
pub(crate) fn satd(cur: &[u8], pred: &[u8], bw: usize, bh: usize) -> u64 {
    debug_assert_eq!(cur.len(), bw * bh);
    debug_assert_eq!(pred.len(), bw * bh);
    let mut total = 0u64;
    let mut y = 0;
    while y < bh {
        let mut x = 0;
        while x < bw {
            if x + 8 <= bw && y + 8 <= bh {
                let mut d = [0i32; 64];
                for r in 0..8 {
                    for c in 0..8 {
                        let i = (y + r) * bw + x + c;
                        d[r * 8 + c] = cur[i] as i32 - pred[i] as i32;
                    }
                }
                total += hadamard8_abs_sum(&mut d) / 8;
            } else {
                satd_partial(cur, pred, bw, bh, x, y, &mut total);
            }
            x += 8;
        }
        y += 8;
    }
    total
}

/// Absolute-difference fallback for an edge cell of the SATD walk:
/// covers `x..min(x+8, bw)` by `y..min(y+8, bh)`. Shared with the SIMD
/// backends so edge handling is one piece of code, not three.
pub(crate) fn satd_partial(
    cur: &[u8],
    pred: &[u8],
    bw: usize,
    bh: usize,
    x: usize,
    y: usize,
    total: &mut u64,
) {
    let ew = bw.min(x + 8);
    let eh = bh.min(y + 8);
    for r in y..eh {
        for c in x..ew {
            let i = r * bw + c;
            *total += (cur[i] as i32 - pred[i] as i32).unsigned_abs() as u64;
        }
    }
}

/// In-place 2-D 8×8 Hadamard transform; returns the sum of absolute
/// transformed coefficients. (Moved verbatim from `motion.rs`.)
pub(crate) fn hadamard8_abs_sum(d: &mut [i32; 64]) -> u64 {
    fn pass8(v: &mut [i32; 8]) {
        for stride in [1usize, 2, 4] {
            let mut i = 0;
            while i < 8 {
                for j in 0..stride {
                    let a = v[i + j];
                    let b = v[i + j + stride];
                    v[i + j] = a + b;
                    v[i + j + stride] = a - b;
                }
                i += stride * 2;
            }
        }
    }
    let mut row = [0i32; 8];
    for r in 0..8 {
        row.copy_from_slice(&d[r * 8..(r + 1) * 8]);
        pass8(&mut row);
        d[r * 8..(r + 1) * 8].copy_from_slice(&row);
    }
    let mut col = [0i32; 8];
    for c in 0..8 {
        for r in 0..8 {
            col[r] = d[r * 8 + c];
        }
        pass8(&mut col);
        for r in 0..8 {
            d[r * 8 + c] = col[r];
        }
    }
    d.iter().map(|&v| v.unsigned_abs() as u64).sum()
}

/// Spatial residual `cur - pred` as i16.
pub(crate) fn compute_residual(cur: &[u8], pred: &[u8], out: &mut [i16]) {
    for ((c, p), o) in cur.iter().zip(pred).zip(out.iter_mut()) {
        *o = *c as i16 - *p as i16;
    }
}

/// Reconstruction add: `out[i] = clamp(pred[i] + resid[i], 0, 255)`.
pub(crate) fn add_residual_clamp(pred: &[u8], resid: &[i16], out: &mut [u8]) {
    for ((p, r), o) in pred.iter().zip(resid).zip(out.iter_mut()) {
        *o = (*p as i32 + *r as i32).clamp(0, 255) as u8;
    }
}

/// Compound-prediction average: `a[i] = ceil((a[i] + b[i]) / 2)`.
pub(crate) fn avg_u8_inplace(a: &mut [u8], b: &[u8]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x as u16 + *y as u16).div_ceil(2) as u8;
    }
}

/// Temporal-filter blend: `acc[i] += src[i] * weight`. Every element
/// is an independent f64 chain, so lane order cannot change results.
pub(crate) fn blend_accumulate(acc: &mut [f64], src: &[u8], weight: f64) {
    for (a, s) in acc.iter_mut().zip(src) {
        *a += *s as f64 * weight;
    }
}

/// One separable-transform pass with *strided* output:
/// `out[q*n + j] = Σ_s m_rows[q*n + s] * input[j*n + s]`.
///
/// Per-output accumulation runs in ascending `s` order — the exact
/// order the pre-kernel transform code used — so f64 results are
/// bit-identical however outputs are grouped.
pub(crate) fn tx_pass_strided(m_rows: &[f64], input: &[f64], n: usize, out: &mut [f64]) {
    for j in 0..n {
        let row = &input[j * n..(j + 1) * n];
        for q in 0..n {
            let mrow = &m_rows[q * n..(q + 1) * n];
            let mut acc = 0.0;
            for s in 0..n {
                acc += mrow[s] * row[s];
            }
            out[q * n + j] = acc;
        }
    }
}

/// One separable-transform pass with *contiguous* output:
/// `out[j*n + q] = Σ_s input[j*n + s] * m_rows[q*n + s]`.
pub(crate) fn tx_pass_contig(m_rows: &[f64], input: &[f64], n: usize, out: &mut [f64]) {
    for j in 0..n {
        let row = &input[j * n..(j + 1) * n];
        for q in 0..n {
            let mrow = &m_rows[q * n..(q + 1) * n];
            let mut acc = 0.0;
            for s in 0..n {
                acc += row[s] * mrow[s];
            }
            out[j * n + q] = acc;
        }
    }
}

/// Rounds each value half-away-from-zero (`f64::round`), clamps to the
/// i16 range, and narrows — the inverse transform's final store, moved
/// verbatim from `transform.rs`.
pub(crate) fn round_clamp_i16(src: &[f64], out: &mut [i16]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = v.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
    }
}

/// Dead-zone quantization of transform coefficients to integer
/// levels — the per-coefficient loop moved verbatim from
/// `quant::quantize` (the `Qp` is resolved to its `step` by the
/// caller so the kernel stays type-free).
pub(crate) fn quantize_levels(coeffs: &[f64], step: f64, deadzone: f64, levels: &mut [i32]) {
    for (c, l) in coeffs.iter().zip(levels.iter_mut()) {
        let mag = (c.abs() / step + deadzone).floor();
        *l = (mag as i32).min(1 << 20) * c.signum() as i32;
    }
}

/// Reconstruction of coefficient values from integer levels — the
/// loop moved verbatim from `quant::dequantize`.
pub(crate) fn dequantize_coeffs(levels: &[i32], step: f64, coeffs: &mut [f64]) {
    for (l, c) in levels.iter().zip(coeffs.iter_mut()) {
        *c = *l as f64 * step;
    }
}
