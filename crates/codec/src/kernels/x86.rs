//! x86_64 SSE2/AVX2 kernel implementations via `core::arch` intrinsics.
//!
//! Every function here is *bit-identical* to its scalar reference in
//! `scalar.rs` — not approximately equal. The per-kernel arguments:
//!
//! - **SAD**: `psadbw`/`vpsadbw` compute exact integer abs-diff sums;
//!   accumulation is associative. The thresholded variants keep the
//!   early-exit check at row granularity (a full row's SAD is computed
//!   before any comparison), so `pixels_examined` matches scalar.
//! - **SATD**: the 8×8 Hadamard is exact i16 integer math (|coef| ≤
//!   255·64 = 16320 < 32767, no overflow). The SIMD form butterflies
//!   columns first, transposes, then butterflies again — the transpose
//!   of the scalar rows-then-columns result — and the abs-coefficient
//!   sum is transpose-invariant.
//! - **Half-pel MC**: `pavgb` computes exactly `(a + b + 1) >> 1`, the
//!   2-tap kernel. The 4-tap corner widens to u16 and computes
//!   `(s + 2) >> 2` exactly (max sum 1022 fits u16); nesting averages
//!   would round differently and is *not* used.
//! - **Reconstruction**: `adds_epi16` + `packus_epi16` ≡ widening add
//!   then `clamp(0, 255)`: pred ∈ [0,255] so the i16 saturation point
//!   (32767) and the pack saturation (255) compose to the same clamp.
//! - **Compound average**: `(a + b).div_ceil(2)` ≡ `(a + b + 1) >> 1`
//!   ≡ `pavgb`, exactly, over the whole u8 × u8 domain.
//! - **f64 transforms / blend**: lanes vectorize *across* independent
//!   outputs; each output's sum accumulates in the same ascending
//!   index order as scalar, with separate mul and add instructions
//!   (never FMA — contraction would change rounding).

#![allow(clippy::too_many_arguments)]

use super::scalar;
use core::arch::x86_64::*;

// ---------------------------------------------------------------- SAD

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn hsum_epi64x2(v: __m128i) -> u64 {
    (_mm_cvtsi128_si64(v) as u64).wrapping_add(_mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)) as u64)
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn sad_row_sse2(a: &[u8], b: &[u8]) -> u64 {
    let n = a.len();
    let mut i = 0;
    let mut acc = _mm_setzero_si128();
    while i + 16 <= n {
        acc = _mm_add_epi64(
            acc,
            _mm_sad_epu8(
                _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i),
                _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i),
            ),
        );
        i += 16;
    }
    let mut sad = hsum_epi64x2(acc);
    if i + 8 <= n {
        // 8-byte tail via the low half of psadbw — covers the common
        // 8-wide block rows that would otherwise be fully scalar.
        let s = _mm_sad_epu8(
            _mm_loadl_epi64(a.as_ptr().add(i) as *const __m128i),
            _mm_loadl_epi64(b.as_ptr().add(i) as *const __m128i),
        );
        sad += _mm_cvtsi128_si64(s) as u64;
        i += 8;
    }
    while i < n {
        sad += (a[i] as i32 - b[i] as i32).unsigned_abs() as u64;
        i += 1;
    }
    sad
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sad_row_avx2(a: &[u8], b: &[u8]) -> u64 {
    let n = a.len();
    let mut i = 0;
    let mut acc = _mm256_setzero_si256();
    while i + 32 <= n {
        acc = _mm256_add_epi64(
            acc,
            _mm256_sad_epu8(
                _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i),
                _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i),
            ),
        );
        i += 32;
    }
    let mut sad = hsum_epi64x2(_mm_add_epi64(
        _mm256_castsi256_si128(acc),
        _mm256_extracti128_si256(acc, 1),
    ));
    if i + 16 <= n {
        sad += hsum_epi64x2(_mm_sad_epu8(
            _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i),
            _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i),
        ));
        i += 16;
    }
    if i + 8 <= n {
        let s = _mm_sad_epu8(
            _mm_loadl_epi64(a.as_ptr().add(i) as *const __m128i),
            _mm_loadl_epi64(b.as_ptr().add(i) as *const __m128i),
        );
        sad += _mm_cvtsi128_si64(s) as u64;
        i += 8;
    }
    while i < n {
        sad += (a[i] as i32 - b[i] as i32).unsigned_abs() as u64;
        i += 1;
    }
    sad
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sad_slice_sse2(a: &[u8], b: &[u8]) -> u64 {
    sad_row_sse2(a, b)
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sad_slice_avx2(a: &[u8], b: &[u8]) -> u64 {
    sad_row_avx2(a, b)
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sad_rows_thresholded_sse2(
    a: &[u8],
    b: &[u8],
    bw: usize,
    threshold: u64,
) -> (u64, u64) {
    let mut sad = 0u64;
    let mut examined = 0u64;
    for (ra, rb) in a.chunks_exact(bw).zip(b.chunks_exact(bw)) {
        sad += sad_row_sse2(ra, rb);
        examined += bw as u64;
        if sad >= threshold {
            return (sad, examined);
        }
    }
    (sad, examined)
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sad_rows_thresholded_avx2(
    a: &[u8],
    b: &[u8],
    bw: usize,
    threshold: u64,
) -> (u64, u64) {
    let mut sad = 0u64;
    let mut examined = 0u64;
    for (ra, rb) in a.chunks_exact(bw).zip(b.chunks_exact(bw)) {
        sad += sad_row_avx2(ra, rb);
        examined += bw as u64;
        if sad >= threshold {
            return (sad, examined);
        }
    }
    (sad, examined)
}

/// SAD of a slice against a constant edge pixel (the replicated border
/// of a clamped fetch), exact via psadbw against a broadcast.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn sad_const_sse2(v: u8, b: &[u8]) -> u64 {
    let n = b.len();
    let vv = _mm_set1_epi8(v as i8);
    let mut i = 0;
    let mut acc = _mm_setzero_si128();
    while i + 16 <= n {
        acc = _mm_add_epi64(
            acc,
            _mm_sad_epu8(vv, _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i)),
        );
        i += 16;
    }
    let mut sad = hsum_epi64x2(acc);
    if i + 8 <= n {
        let s = _mm_sad_epu8(vv, _mm_loadl_epi64(b.as_ptr().add(i) as *const __m128i));
        sad += _mm_cvtsi128_si64(s) as u64;
        i += 8;
    }
    while i < n {
        sad += (v as i32 - b[i] as i32).unsigned_abs() as u64;
        i += 1;
    }
    sad
}

/// One row of an edge-clamped thresholded SAD. A clamped row reads
/// `data[cy][clamp(x + bx, 0, w-1)]`, which decomposes into a
/// replicated left border, a contiguous in-bounds middle, and a
/// replicated right border — each exactly vectorizable.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn sad_row_clamped_sse2(row: &[u8], x: isize, other: &[u8]) -> u64 {
    let (w, bw) = (row.len(), other.len());
    let left = (-x).clamp(0, bw as isize) as usize;
    let right_start = (w as isize - x).clamp(left as isize, bw as isize) as usize;
    let mut sad = sad_const_sse2(row[0], &other[..left]);
    if right_start > left {
        let mid = &row[(x + left as isize) as usize..(x + right_start as isize) as usize];
        sad += sad_row_sse2(mid, &other[left..right_start]);
    }
    sad + sad_const_sse2(row[w - 1], &other[right_start..])
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sad_row_clamped_avx2(row: &[u8], x: isize, other: &[u8]) -> u64 {
    let (w, bw) = (row.len(), other.len());
    let left = (-x).clamp(0, bw as isize) as usize;
    let right_start = (w as isize - x).clamp(left as isize, bw as isize) as usize;
    let mut sad = sad_const_sse2(row[0], &other[..left]);
    if right_start > left {
        let mid = &row[(x + left as isize) as usize..(x + right_start as isize) as usize];
        sad += sad_row_avx2(mid, &other[left..right_start]);
    }
    sad + sad_const_sse2(row[w - 1], &other[right_start..])
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sad_block_clamped_sse2(
    data: &[u8],
    width: usize,
    height: usize,
    x: isize,
    y: isize,
    bw: usize,
    bh: usize,
    other: &[u8],
    threshold: u64,
) -> (u64, u64) {
    let mut sad = 0u64;
    let mut examined = 0u64;
    for by in 0..bh {
        let cy = (y + by as isize).clamp(0, height as isize - 1) as usize;
        let row = &data[cy * width..(cy + 1) * width];
        sad += sad_row_clamped_sse2(row, x, &other[by * bw..(by + 1) * bw]);
        examined += bw as u64;
        if sad >= threshold {
            return (sad, examined);
        }
    }
    (sad, examined)
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sad_block_clamped_avx2(
    data: &[u8],
    width: usize,
    height: usize,
    x: isize,
    y: isize,
    bw: usize,
    bh: usize,
    other: &[u8],
    threshold: u64,
) -> (u64, u64) {
    let mut sad = 0u64;
    let mut examined = 0u64;
    for by in 0..bh {
        let cy = (y + by as isize).clamp(0, height as isize - 1) as usize;
        let row = &data[cy * width..(cy + 1) * width];
        sad += sad_row_clamped_avx2(row, x, &other[by * bw..(by + 1) * bw]);
        examined += bw as u64;
        if sad >= threshold {
            return (sad, examined);
        }
    }
    (sad, examined)
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn sad_block_thresholded_sse2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    other: &[u8],
    threshold: u64,
) -> (u64, u64) {
    let mut sad = 0u64;
    let mut examined = 0u64;
    for by in 0..bh {
        let base = (y + by) * stride + x;
        sad += sad_row_sse2(&data[base..base + bw], &other[by * bw..(by + 1) * bw]);
        examined += bw as u64;
        if sad >= threshold {
            return (sad, examined);
        }
    }
    (sad, examined)
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn sad_block_thresholded_avx2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    other: &[u8],
    threshold: u64,
) -> (u64, u64) {
    let mut sad = 0u64;
    let mut examined = 0u64;
    for by in 0..bh {
        let base = (y + by) * stride + x;
        sad += sad_row_avx2(&data[base..base + bw], &other[by * bw..(by + 1) * bw]);
        examined += bw as u64;
        if sad >= threshold {
            return (sad, examined);
        }
    }
    (sad, examined)
}

// --------------------------------------------------------------- SATD

/// Cross-register Hadamard butterfly (strides 1, 2, 4 over the
/// register index) — the same network as the scalar `pass8`.
macro_rules! butterfly8 {
    ($v:ident, $add:ident, $sub:ident) => {
        for stride in [1usize, 2, 4] {
            let mut i = 0;
            while i < 8 {
                for j in 0..stride {
                    let a = $v[i + j];
                    let b = $v[i + j + stride];
                    $v[i + j] = $add(a, b);
                    $v[i + j + stride] = $sub(a, b);
                }
                i += stride * 2;
            }
        }
    };
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn transpose8x8_i16(v: &mut [__m128i; 8]) {
    let a0 = _mm_unpacklo_epi16(v[0], v[1]);
    let a1 = _mm_unpackhi_epi16(v[0], v[1]);
    let a2 = _mm_unpacklo_epi16(v[2], v[3]);
    let a3 = _mm_unpackhi_epi16(v[2], v[3]);
    let a4 = _mm_unpacklo_epi16(v[4], v[5]);
    let a5 = _mm_unpackhi_epi16(v[4], v[5]);
    let a6 = _mm_unpacklo_epi16(v[6], v[7]);
    let a7 = _mm_unpackhi_epi16(v[6], v[7]);
    let b0 = _mm_unpacklo_epi32(a0, a2);
    let b1 = _mm_unpackhi_epi32(a0, a2);
    let b2 = _mm_unpacklo_epi32(a1, a3);
    let b3 = _mm_unpackhi_epi32(a1, a3);
    let b4 = _mm_unpacklo_epi32(a4, a6);
    let b5 = _mm_unpackhi_epi32(a4, a6);
    let b6 = _mm_unpacklo_epi32(a5, a7);
    let b7 = _mm_unpackhi_epi32(a5, a7);
    v[0] = _mm_unpacklo_epi64(b0, b4);
    v[1] = _mm_unpackhi_epi64(b0, b4);
    v[2] = _mm_unpacklo_epi64(b1, b5);
    v[3] = _mm_unpackhi_epi64(b1, b5);
    v[4] = _mm_unpacklo_epi64(b2, b6);
    v[5] = _mm_unpackhi_epi64(b2, b6);
    v[6] = _mm_unpacklo_epi64(b3, b7);
    v[7] = _mm_unpackhi_epi64(b3, b7);
}

/// Two side-by-side 8×8 transposes: the 256-bit unpacks operate within
/// each 128-bit lane, which is exactly one block per lane.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn transpose8x8_i16_pair(v: &mut [__m256i; 8]) {
    let a0 = _mm256_unpacklo_epi16(v[0], v[1]);
    let a1 = _mm256_unpackhi_epi16(v[0], v[1]);
    let a2 = _mm256_unpacklo_epi16(v[2], v[3]);
    let a3 = _mm256_unpackhi_epi16(v[2], v[3]);
    let a4 = _mm256_unpacklo_epi16(v[4], v[5]);
    let a5 = _mm256_unpackhi_epi16(v[4], v[5]);
    let a6 = _mm256_unpacklo_epi16(v[6], v[7]);
    let a7 = _mm256_unpackhi_epi16(v[6], v[7]);
    let b0 = _mm256_unpacklo_epi32(a0, a2);
    let b1 = _mm256_unpackhi_epi32(a0, a2);
    let b2 = _mm256_unpacklo_epi32(a1, a3);
    let b3 = _mm256_unpackhi_epi32(a1, a3);
    let b4 = _mm256_unpacklo_epi32(a4, a6);
    let b5 = _mm256_unpackhi_epi32(a4, a6);
    let b6 = _mm256_unpacklo_epi32(a5, a7);
    let b7 = _mm256_unpackhi_epi32(a5, a7);
    v[0] = _mm256_unpacklo_epi64(b0, b4);
    v[1] = _mm256_unpackhi_epi64(b0, b4);
    v[2] = _mm256_unpacklo_epi64(b1, b5);
    v[3] = _mm256_unpackhi_epi64(b1, b5);
    v[4] = _mm256_unpacklo_epi64(b2, b6);
    v[5] = _mm256_unpackhi_epi64(b2, b6);
    v[6] = _mm256_unpacklo_epi64(b3, b7);
    v[7] = _mm256_unpackhi_epi64(b3, b7);
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn hsum_epi32x4(v: __m128i) -> u64 {
    let mut lanes = [0i32; 4];
    _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, v);
    lanes.iter().map(|&l| l as u64).sum()
}

/// 2-D Hadamard abs-coefficient sum of one 8×8 block of `cur - pred`.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn hadamard8_abs_sum_sse2(cur: *const u8, pred: *const u8, stride: usize) -> u64 {
    let zero = _mm_setzero_si128();
    let mut v = [zero; 8];
    for (r, slot) in v.iter_mut().enumerate() {
        let c = _mm_loadl_epi64(cur.add(r * stride) as *const __m128i);
        let p = _mm_loadl_epi64(pred.add(r * stride) as *const __m128i);
        *slot = _mm_sub_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(p, zero));
    }
    butterfly8!(v, _mm_add_epi16, _mm_sub_epi16);
    transpose8x8_i16(&mut v);
    butterfly8!(v, _mm_add_epi16, _mm_sub_epi16);
    let ones = _mm_set1_epi16(1);
    let mut acc = _mm_setzero_si128();
    for &t in &v {
        // abs via max(v, 0 - v): no SSSE3 required, exact for |v| ≤ 16320.
        let abs = _mm_max_epi16(t, _mm_sub_epi16(zero, t));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(abs, ones));
    }
    hsum_epi32x4(acc)
}

/// Two horizontally adjacent 8×8 Hadamard blocks at once (one per
/// 128-bit lane). Returns each block's `abs_sum / 8` contribution
/// summed — the per-block flooring division matches the scalar walk.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hadamard8_pair_avx2(cur: *const u8, pred: *const u8, stride: usize) -> u64 {
    let mut v = [_mm256_setzero_si256(); 8];
    for (r, slot) in v.iter_mut().enumerate() {
        let c = _mm256_cvtepu8_epi16(_mm_loadu_si128(cur.add(r * stride) as *const __m128i));
        let p = _mm256_cvtepu8_epi16(_mm_loadu_si128(pred.add(r * stride) as *const __m128i));
        *slot = _mm256_sub_epi16(c, p);
    }
    butterfly8!(v, _mm256_add_epi16, _mm256_sub_epi16);
    transpose8x8_i16_pair(&mut v);
    butterfly8!(v, _mm256_add_epi16, _mm256_sub_epi16);
    let ones = _mm256_set1_epi16(1);
    let mut acc = _mm256_setzero_si256();
    for &t in &v {
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(_mm256_abs_epi16(t), ones));
    }
    let left = hsum_epi32x4(_mm256_castsi256_si128(acc));
    let right = hsum_epi32x4(_mm256_extracti128_si256(acc, 1));
    left / 8 + right / 8
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn satd_sse2(cur: &[u8], pred: &[u8], bw: usize, bh: usize) -> u64 {
    let mut total = 0u64;
    let mut y = 0;
    while y < bh {
        let mut x = 0;
        while x < bw {
            if x + 8 <= bw && y + 8 <= bh {
                let off = y * bw + x;
                total +=
                    hadamard8_abs_sum_sse2(cur.as_ptr().add(off), pred.as_ptr().add(off), bw) / 8;
            } else {
                scalar::satd_partial(cur, pred, bw, bh, x, y, &mut total);
            }
            x += 8;
        }
        y += 8;
    }
    total
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn satd_avx2(cur: &[u8], pred: &[u8], bw: usize, bh: usize) -> u64 {
    let mut total = 0u64;
    let mut y = 0;
    while y < bh {
        let mut x = 0;
        while x < bw {
            if y + 8 <= bh && x + 16 <= bw {
                let off = y * bw + x;
                total += hadamard8_pair_avx2(cur.as_ptr().add(off), pred.as_ptr().add(off), bw);
                x += 16;
                continue;
            }
            if x + 8 <= bw && y + 8 <= bh {
                let off = y * bw + x;
                total +=
                    hadamard8_abs_sum_sse2(cur.as_ptr().add(off), pred.as_ptr().add(off), bw) / 8;
            } else {
                scalar::satd_partial(cur, pred, bw, bh, x, y, &mut total);
            }
            x += 8;
        }
        y += 8;
    }
    total
}

// -------------------------------------------------------- half-pel MC

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn hpel_h_sse2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    for by in 0..bh {
        let base = (y + by) * stride + x;
        let row = &data[base..base + bw + 1];
        let out = &mut dst[by * bw..(by + 1) * bw];
        let mut i = 0;
        while i + 16 <= bw {
            let a = _mm_loadu_si128(row.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadu_si128(row.as_ptr().add(i + 1) as *const __m128i);
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, _mm_avg_epu8(a, b));
            i += 16;
        }
        while i < bw {
            out[i] = ((row[i] as u16 + row[i + 1] as u16 + 1) >> 1) as u8;
            i += 1;
        }
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn hpel_h_avx2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    for by in 0..bh {
        let base = (y + by) * stride + x;
        let row = &data[base..base + bw + 1];
        let out = &mut dst[by * bw..(by + 1) * bw];
        let mut i = 0;
        while i + 32 <= bw {
            let a = _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(row.as_ptr().add(i + 1) as *const __m256i);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_avg_epu8(a, b),
            );
            i += 32;
        }
        if i + 16 <= bw {
            let a = _mm_loadu_si128(row.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadu_si128(row.as_ptr().add(i + 1) as *const __m128i);
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, _mm_avg_epu8(a, b));
            i += 16;
        }
        while i < bw {
            out[i] = ((row[i] as u16 + row[i + 1] as u16 + 1) >> 1) as u8;
            i += 1;
        }
    }
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn hpel_v_sse2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    for by in 0..bh {
        let base = (y + by) * stride + x;
        let r0 = &data[base..base + bw];
        let r1 = &data[base + stride..base + stride + bw];
        let out = &mut dst[by * bw..(by + 1) * bw];
        let mut i = 0;
        while i + 16 <= bw {
            let a = _mm_loadu_si128(r0.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadu_si128(r1.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, _mm_avg_epu8(a, b));
            i += 16;
        }
        while i < bw {
            out[i] = ((r0[i] as u16 + r1[i] as u16 + 1) >> 1) as u8;
            i += 1;
        }
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn hpel_v_avx2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    for by in 0..bh {
        let base = (y + by) * stride + x;
        let r0 = &data[base..base + bw];
        let r1 = &data[base + stride..base + stride + bw];
        let out = &mut dst[by * bw..(by + 1) * bw];
        let mut i = 0;
        while i + 32 <= bw {
            let a = _mm256_loadu_si256(r0.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(r1.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_avg_epu8(a, b),
            );
            i += 32;
        }
        if i + 16 <= bw {
            let a = _mm_loadu_si128(r0.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadu_si128(r1.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, _mm_avg_epu8(a, b));
            i += 16;
        }
        while i < bw {
            out[i] = ((r0[i] as u16 + r1[i] as u16 + 1) >> 1) as u8;
            i += 1;
        }
    }
}

/// 4-tap corner: widen all four taps to u16 and compute `(s + 2) >> 2`
/// exactly. Max sum is 4·255 + 2 = 1022, comfortably inside u16; the
/// shifted result ≤ 255 packs losslessly.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn hpel_hv16(r0: *const u8, r1: *const u8, out: *mut u8) {
    let zero = _mm_setzero_si128();
    let two = _mm_set1_epi16(2);
    let a = _mm_loadu_si128(r0 as *const __m128i);
    let b = _mm_loadu_si128(r0.add(1) as *const __m128i);
    let c = _mm_loadu_si128(r1 as *const __m128i);
    let d = _mm_loadu_si128(r1.add(1) as *const __m128i);
    let lo = _mm_add_epi16(
        _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero)),
        _mm_add_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(d, zero)),
    );
    let hi = _mm_add_epi16(
        _mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(b, zero)),
        _mm_add_epi16(_mm_unpackhi_epi8(c, zero), _mm_unpackhi_epi8(d, zero)),
    );
    let lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
    let hi = _mm_srli_epi16(_mm_add_epi16(hi, two), 2);
    _mm_storeu_si128(out as *mut __m128i, _mm_packus_epi16(lo, hi));
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn hpel_hv_sse2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    for by in 0..bh {
        let base = (y + by) * stride + x;
        let r0 = &data[base..base + bw + 1];
        let r1 = &data[base + stride..base + stride + bw + 1];
        let out = &mut dst[by * bw..(by + 1) * bw];
        let mut i = 0;
        while i + 16 <= bw {
            hpel_hv16(
                r0.as_ptr().add(i),
                r1.as_ptr().add(i),
                out.as_mut_ptr().add(i),
            );
            i += 16;
        }
        while i < bw {
            let s = r0[i] as u16 + r0[i + 1] as u16 + r1[i] as u16 + r1[i + 1] as u16;
            out[i] = ((s + 2) >> 2) as u8;
            i += 1;
        }
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn hpel_hv_avx2(
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    let zero = _mm256_setzero_si256();
    let two = _mm256_set1_epi16(2);
    for by in 0..bh {
        let base = (y + by) * stride + x;
        let r0 = &data[base..base + bw + 1];
        let r1 = &data[base + stride..base + stride + bw + 1];
        let out = &mut dst[by * bw..(by + 1) * bw];
        let mut i = 0;
        while i + 32 <= bw {
            let a = _mm256_loadu_si256(r0.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(r0.as_ptr().add(i + 1) as *const __m256i);
            let c = _mm256_loadu_si256(r1.as_ptr().add(i) as *const __m256i);
            let d = _mm256_loadu_si256(r1.as_ptr().add(i + 1) as *const __m256i);
            let lo = _mm256_add_epi16(
                _mm256_add_epi16(_mm256_unpacklo_epi8(a, zero), _mm256_unpacklo_epi8(b, zero)),
                _mm256_add_epi16(_mm256_unpacklo_epi8(c, zero), _mm256_unpacklo_epi8(d, zero)),
            );
            let hi = _mm256_add_epi16(
                _mm256_add_epi16(_mm256_unpackhi_epi8(a, zero), _mm256_unpackhi_epi8(b, zero)),
                _mm256_add_epi16(_mm256_unpackhi_epi8(c, zero), _mm256_unpackhi_epi8(d, zero)),
            );
            let lo = _mm256_srli_epi16(_mm256_add_epi16(lo, two), 2);
            let hi = _mm256_srli_epi16(_mm256_add_epi16(hi, two), 2);
            // packus interleaves per 128-bit lane in the same order the
            // unpacks split, so bytes land back in position.
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_packus_epi16(lo, hi),
            );
            i += 32;
        }
        if i + 16 <= bw {
            hpel_hv16(
                r0.as_ptr().add(i),
                r1.as_ptr().add(i),
                out.as_mut_ptr().add(i),
            );
            i += 16;
        }
        while i < bw {
            let s = r0[i] as u16 + r0[i + 1] as u16 + r1[i] as u16 + r1[i + 1] as u16;
            out[i] = ((s + 2) >> 2) as u8;
            i += 1;
        }
    }
}

// ----------------------------------------------- residual / recon

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn compute_residual_sse2(cur: &[u8], pred: &[u8], out: &mut [i16]) {
    let n = cur.len();
    let zero = _mm_setzero_si128();
    let mut i = 0;
    while i + 16 <= n {
        let c = _mm_loadu_si128(cur.as_ptr().add(i) as *const __m128i);
        let p = _mm_loadu_si128(pred.as_ptr().add(i) as *const __m128i);
        let lo = _mm_sub_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(p, zero));
        let hi = _mm_sub_epi16(_mm_unpackhi_epi8(c, zero), _mm_unpackhi_epi8(p, zero));
        _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, lo);
        _mm_storeu_si128(out.as_mut_ptr().add(i + 8) as *mut __m128i, hi);
        i += 16;
    }
    while i < n {
        out[i] = cur[i] as i16 - pred[i] as i16;
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn compute_residual_avx2(cur: &[u8], pred: &[u8], out: &mut [i16]) {
    let n = cur.len();
    let mut i = 0;
    while i + 16 <= n {
        let c = _mm256_cvtepu8_epi16(_mm_loadu_si128(cur.as_ptr().add(i) as *const __m128i));
        let p = _mm256_cvtepu8_epi16(_mm_loadu_si128(pred.as_ptr().add(i) as *const __m128i));
        _mm256_storeu_si256(
            out.as_mut_ptr().add(i) as *mut __m256i,
            _mm256_sub_epi16(c, p),
        );
        i += 16;
    }
    while i < n {
        out[i] = cur[i] as i16 - pred[i] as i16;
        i += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn add_residual_clamp_sse2(pred: &[u8], resid: &[i16], out: &mut [u8]) {
    let n = pred.len();
    let zero = _mm_setzero_si128();
    let mut i = 0;
    while i + 16 <= n {
        let p = _mm_loadu_si128(pred.as_ptr().add(i) as *const __m128i);
        let rlo = _mm_loadu_si128(resid.as_ptr().add(i) as *const __m128i);
        let rhi = _mm_loadu_si128(resid.as_ptr().add(i + 8) as *const __m128i);
        let slo = _mm_adds_epi16(_mm_unpacklo_epi8(p, zero), rlo);
        let shi = _mm_adds_epi16(_mm_unpackhi_epi8(p, zero), rhi);
        _mm_storeu_si128(
            out.as_mut_ptr().add(i) as *mut __m128i,
            _mm_packus_epi16(slo, shi),
        );
        i += 16;
    }
    while i < n {
        out[i] = (pred[i] as i32 + resid[i] as i32).clamp(0, 255) as u8;
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn add_residual_clamp_avx2(pred: &[u8], resid: &[i16], out: &mut [u8]) {
    let n = pred.len();
    let mut i = 0;
    while i + 16 <= n {
        let p = _mm256_cvtepu8_epi16(_mm_loadu_si128(pred.as_ptr().add(i) as *const __m128i));
        let r = _mm256_loadu_si256(resid.as_ptr().add(i) as *const __m256i);
        let s = _mm256_adds_epi16(p, r);
        let packed = _mm_packus_epi16(_mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1));
        _mm_storeu_si128(out.as_mut_ptr().add(i) as *mut __m128i, packed);
        i += 16;
    }
    while i < n {
        out[i] = (pred[i] as i32 + resid[i] as i32).clamp(0, 255) as u8;
        i += 1;
    }
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn avg_u8_inplace_sse2(a: &mut [u8], b: &[u8]) {
    let n = a.len();
    let mut i = 0;
    while i + 16 <= n {
        let x = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let y = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
        _mm_storeu_si128(a.as_mut_ptr().add(i) as *mut __m128i, _mm_avg_epu8(x, y));
        i += 16;
    }
    while i < n {
        a[i] = (a[i] as u16 + b[i] as u16).div_ceil(2) as u8;
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn avg_u8_inplace_avx2(a: &mut [u8], b: &[u8]) {
    let n = a.len();
    let mut i = 0;
    while i + 32 <= n {
        let x = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let y = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        _mm256_storeu_si256(a.as_mut_ptr().add(i) as *mut __m256i, _mm256_avg_epu8(x, y));
        i += 32;
    }
    if i + 16 <= n {
        let x = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
        let y = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
        _mm_storeu_si128(a.as_mut_ptr().add(i) as *mut __m128i, _mm_avg_epu8(x, y));
        i += 16;
    }
    while i < n {
        a[i] = (a[i] as u16 + b[i] as u16).div_ceil(2) as u8;
        i += 1;
    }
}

// ------------------------------------------------- f64 blend / tx

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn blend_accumulate_sse2(acc: &mut [f64], src: &[u8], weight: f64) {
    let n = acc.len();
    let zero = _mm_setzero_si128();
    let wv = _mm_set1_pd(weight);
    let mut i = 0;
    while i + 4 <= n {
        let raw = u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]);
        let v32 = _mm_unpacklo_epi16(_mm_unpacklo_epi8(_mm_cvtsi32_si128(raw as i32), zero), zero);
        let lo = _mm_cvtepi32_pd(v32);
        let hi = _mm_cvtepi32_pd(_mm_shuffle_epi32(v32, 0b0000_1110));
        // Separate mul + add — FMA contraction would change rounding.
        _mm_storeu_pd(
            acc.as_mut_ptr().add(i),
            _mm_add_pd(_mm_loadu_pd(acc.as_ptr().add(i)), _mm_mul_pd(lo, wv)),
        );
        _mm_storeu_pd(
            acc.as_mut_ptr().add(i + 2),
            _mm_add_pd(_mm_loadu_pd(acc.as_ptr().add(i + 2)), _mm_mul_pd(hi, wv)),
        );
        i += 4;
    }
    while i < n {
        acc[i] += src[i] as f64 * weight;
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn blend_accumulate_avx2(acc: &mut [f64], src: &[u8], weight: f64) {
    let n = acc.len();
    let wv = _mm256_set1_pd(weight);
    let mut i = 0;
    while i + 4 <= n {
        let raw = u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]);
        let v = _mm256_cvtepi32_pd(_mm_cvtepu8_epi32(_mm_cvtsi32_si128(raw as i32)));
        _mm256_storeu_pd(
            acc.as_mut_ptr().add(i),
            _mm256_add_pd(_mm256_loadu_pd(acc.as_ptr().add(i)), _mm256_mul_pd(v, wv)),
        );
        i += 4;
    }
    while i < n {
        acc[i] += src[i] as f64 * weight;
        i += 1;
    }
}

/// Computes one row of a transform pass into `vals[..n]`: `vals[q] =
/// Σ_s m_cols[s*n + q] * row[s]`, SSE2. Outputs are grouped eight at a
/// time (four xmm accumulators) so the CPU has four independent
/// `addpd` dependency chains in flight; each output's own accumulation
/// still runs in ascending `s` order — the exact scalar arithmetic.
/// One `set1` broadcast per `s` is amortized over all four vectors.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn tx_row_sse2(m_cols: &[f64], row: &[f64], n: usize, vals: &mut [f64]) {
    let mut q = 0;
    while q + 8 <= n {
        let mut a0 = _mm_setzero_pd();
        let mut a1 = _mm_setzero_pd();
        let mut a2 = _mm_setzero_pd();
        let mut a3 = _mm_setzero_pd();
        for (s, &r) in row.iter().enumerate() {
            let w = _mm_set1_pd(r);
            let base = m_cols.as_ptr().add(s * n + q);
            a0 = _mm_add_pd(a0, _mm_mul_pd(_mm_loadu_pd(base), w));
            a1 = _mm_add_pd(a1, _mm_mul_pd(_mm_loadu_pd(base.add(2)), w));
            a2 = _mm_add_pd(a2, _mm_mul_pd(_mm_loadu_pd(base.add(4)), w));
            a3 = _mm_add_pd(a3, _mm_mul_pd(_mm_loadu_pd(base.add(6)), w));
        }
        let p = vals.as_mut_ptr().add(q);
        _mm_storeu_pd(p, a0);
        _mm_storeu_pd(p.add(2), a1);
        _mm_storeu_pd(p.add(4), a2);
        _mm_storeu_pd(p.add(6), a3);
        q += 8;
    }
    while q < n {
        let mut acc = _mm_setzero_pd();
        for (s, &r) in row.iter().enumerate() {
            let m = _mm_loadu_pd(m_cols.as_ptr().add(s * n + q));
            acc = _mm_add_pd(acc, _mm_mul_pd(m, _mm_set1_pd(r)));
        }
        _mm_storeu_pd(vals.as_mut_ptr().add(q), acc);
        q += 2;
    }
}

/// AVX2 variant of [`tx_row_sse2`]: sixteen outputs (four ymm chains)
/// per block, with 8- and 4-wide tails for the smaller transforms.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tx_row_avx2(m_cols: &[f64], row: &[f64], n: usize, vals: &mut [f64]) {
    let mut q = 0;
    while q + 16 <= n {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        for (s, &r) in row.iter().enumerate() {
            let w = _mm256_set1_pd(r);
            let base = m_cols.as_ptr().add(s * n + q);
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(base), w));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(base.add(4)), w));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(base.add(8)), w));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(base.add(12)), w));
        }
        let p = vals.as_mut_ptr().add(q);
        _mm256_storeu_pd(p, a0);
        _mm256_storeu_pd(p.add(4), a1);
        _mm256_storeu_pd(p.add(8), a2);
        _mm256_storeu_pd(p.add(12), a3);
        q += 16;
    }
    while q + 8 <= n {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        for (s, &r) in row.iter().enumerate() {
            let w = _mm256_set1_pd(r);
            let base = m_cols.as_ptr().add(s * n + q);
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(base), w));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(base.add(4)), w));
        }
        let p = vals.as_mut_ptr().add(q);
        _mm256_storeu_pd(p, a0);
        _mm256_storeu_pd(p.add(4), a1);
        q += 8;
    }
    while q < n {
        let mut acc = _mm256_setzero_pd();
        for (s, &r) in row.iter().enumerate() {
            let m = _mm256_loadu_pd(m_cols.as_ptr().add(s * n + q));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(m, _mm256_set1_pd(r)));
        }
        _mm256_storeu_pd(vals.as_mut_ptr().add(q), acc);
        q += 4;
    }
}

/// Strided transform pass, SSE2: `out[q*n + j] = Σ_s m_cols[s*n + q] *
/// input[j*n + s]`. `m_cols` is the transposed matrix (`m_cols[s*n + q]
/// == m_rows[q*n + s]`), giving contiguous lane loads.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn tx_pass_strided_sse2(
    m_cols: &[f64],
    input: &[f64],
    n: usize,
    out: &mut [f64],
) {
    let mut vals = [0.0f64; 32];
    for j in 0..n {
        let row = &input[j * n..(j + 1) * n];
        tx_row_sse2(m_cols, row, n, &mut vals[..n]);
        for (q, &v) in vals[..n].iter().enumerate() {
            out[q * n + j] = v;
        }
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn tx_pass_strided_avx2(
    m_cols: &[f64],
    input: &[f64],
    n: usize,
    out: &mut [f64],
) {
    let mut vals = [0.0f64; 32];
    for j in 0..n {
        let row = &input[j * n..(j + 1) * n];
        tx_row_avx2(m_cols, row, n, &mut vals[..n]);
        for (q, &v) in vals[..n].iter().enumerate() {
            out[q * n + j] = v;
        }
    }
}

#[target_feature(enable = "sse2")]
pub(crate) unsafe fn tx_pass_contig_sse2(m_cols: &[f64], input: &[f64], n: usize, out: &mut [f64]) {
    for j in 0..n {
        let (row, dst) = {
            let row = &input[j * n..(j + 1) * n];
            let dst = &mut out[j * n..(j + 1) * n];
            (row, dst)
        };
        tx_row_sse2(m_cols, row, n, dst);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn tx_pass_contig_avx2(m_cols: &[f64], input: &[f64], n: usize, out: &mut [f64]) {
    for j in 0..n {
        let (row, dst) = {
            let row = &input[j * n..(j + 1) * n];
            let dst = &mut out[j * n..(j + 1) * n];
            (row, dst)
        };
        tx_row_avx2(m_cols, row, n, dst);
    }
}

// --------------------------------------------------- round/clamp store

/// Round-half-away-from-zero has no direct SIMD instruction, but
/// decomposes exactly: `t = trunc(v)` (`round_pd` toward zero), then
/// `f = v - t` (exact — `t` and `v` lie in the same binade, so the
/// subtraction is lossless by the Sterbenz lemma), then add ±1.0 where
/// `|f| >= 0.5`. That reproduces `f64::round` bit-for-bit on every
/// finite input; the clamped integral f64 then converts exactly
/// through `cvttpd` and a saturating i32→i16 pack (values are already
/// inside the i16 range, so the saturation never engages).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn round_clamp_i16_avx2(src: &[f64], out: &mut [i16]) {
    let n = src.len();
    let half = _mm256_set1_pd(0.5);
    let neg_half = _mm256_set1_pd(-0.5);
    let one = _mm256_set1_pd(1.0);
    let neg_one = _mm256_set1_pd(-1.0);
    let lo = _mm256_set1_pd(i16::MIN as f64);
    let hi = _mm256_set1_pd(i16::MAX as f64);
    let mut i = 0;
    while i + 4 <= n {
        let v = _mm256_loadu_pd(src.as_ptr().add(i));
        let t = _mm256_round_pd::<_MM_FROUND_TRUNC>(v);
        let f = _mm256_sub_pd(v, t);
        let up = _mm256_and_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(f, half), one);
        let dn = _mm256_and_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(f, neg_half), neg_one);
        let r = _mm256_add_pd(_mm256_add_pd(t, up), dn);
        let c = _mm256_max_pd(_mm256_min_pd(r, hi), lo);
        let q = _mm256_cvttpd_epi32(c);
        let p = _mm_packs_epi32(q, q);
        _mm_storel_epi64(out.as_mut_ptr().add(i) as *mut __m128i, p);
        i += 4;
    }
    while i < n {
        out[i] = src[i].round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        i += 1;
    }
}

// --------------------------------------------------------- quantizer

/// Dead-zone quantization, 4 coefficients per iteration. Every step
/// reproduces the scalar expression bit-for-bit on finite inputs:
/// `abs` is a sign-bit mask, the division stays a division (no
/// reciprocal — `vdivpd` is correctly rounded), `floor` is
/// `round_pd` toward negative infinity, and the `1 << 20` magnitude
/// cap moves into the f64 domain (`min_pd` before conversion), which
/// agrees with the scalar `(mag as i32).min(1 << 20)` because the
/// floored magnitude is non-negative and the cap is exactly
/// representable. The signed product `±mag` is integral and at most
/// 2^20 in magnitude, so `cvttpd` converts it exactly.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn quantize_levels_avx2(
    coeffs: &[f64],
    step: f64,
    deadzone: f64,
    levels: &mut [i32],
) {
    let n = coeffs.len();
    let vstep = _mm256_set1_pd(step);
    let vdz = _mm256_set1_pd(deadzone);
    let vcap = _mm256_set1_pd((1i32 << 20) as f64);
    let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MAX));
    let sign_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(i64::MIN));
    let one = _mm256_set1_pd(1.0);
    let mut i = 0;
    while i + 4 <= n {
        let v = _mm256_loadu_pd(coeffs.as_ptr().add(i));
        let a = _mm256_and_pd(v, abs_mask);
        let mag =
            _mm256_round_pd::<_MM_FROUND_TO_NEG_INF>(_mm256_add_pd(_mm256_div_pd(a, vstep), vdz));
        let capped = _mm256_min_pd(mag, vcap);
        let sign = _mm256_or_pd(_mm256_and_pd(v, sign_mask), one);
        let q = _mm256_cvttpd_epi32(_mm256_mul_pd(capped, sign));
        _mm_storeu_si128(levels.as_mut_ptr().add(i) as *mut __m128i, q);
        i += 4;
    }
    while i < n {
        let c = coeffs[i];
        let mag = (c.abs() / step + deadzone).floor();
        levels[i] = (mag as i32).min(1 << 20) * c.signum() as i32;
        i += 1;
    }
}

/// Level reconstruction: `i32 -> f64` widening is exact and the
/// per-lane multiply is the same IEEE operation the scalar loop
/// performs, so the output is bit-identical.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn dequantize_coeffs_avx2(levels: &[i32], step: f64, coeffs: &mut [f64]) {
    let n = levels.len();
    let vstep = _mm256_set1_pd(step);
    let mut i = 0;
    while i + 4 <= n {
        let l = _mm_loadu_si128(levels.as_ptr().add(i) as *const __m128i);
        let v = _mm256_mul_pd(_mm256_cvtepi32_pd(l), vstep);
        _mm256_storeu_pd(coeffs.as_mut_ptr().add(i), v);
        i += 4;
    }
    while i < n {
        coeffs[i] = levels[i] as f64 * step;
        i += 1;
    }
}
