//! Pixel-kernel layer with runtime SIMD dispatch.
//!
//! Every hot inner loop of the encoder — SAD, Hadamard SATD, half-pel
//! motion compensation, residual/reconstruction, compound averaging,
//! temporal-filter blending, and the separable transform passes — goes
//! through this module. Each kernel has:
//!
//! - a portable scalar reference in [`scalar`] (the exact pre-kernel
//!   loop, moved not rewritten), and
//! - optional x86_64 SSE2/AVX2 implementations in `x86` that are
//!   **bit-identical** to the scalar reference (see the per-kernel
//!   proofs in `x86.rs`).
//!
//! The active backend is a process-wide dispatch table initialised
//! lazily from the `VCU_SIMD` environment variable:
//!
//! | value          | meaning                                          |
//! |----------------|--------------------------------------------------|
//! | `off`/`scalar` | portable scalar kernels                          |
//! | `sse2`         | SSE2 (falls back to scalar if unavailable)       |
//! | `avx2`         | AVX2 (falls back to sse2, then scalar)           |
//! | `auto` / unset | best backend the CPU reports (default)           |
//!
//! Because every backend is byte-identical, the choice is invisible in
//! golden bitstreams, work-unit counters, and telemetry snapshots —
//! `VCU_SIMD` only moves wall-clock time. Tests pin this by running
//! whole encodes and per-kernel differential sweeps across backends.
//!
//! Each dispatched kernel also has a `*_with(backend, ...)` variant so
//! tests and micro-benches can exercise a specific backend without
//! mutating process-global state.

pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::atomic::{AtomicU8, Ordering};
use vcu_media::Plane;

/// A kernel implementation set. Ordered by preference: higher is wider.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Backend {
    /// Portable scalar reference kernels.
    Scalar = 1,
    /// 128-bit SSE2 kernels (baseline on every x86_64 CPU).
    Sse2 = 2,
    /// 256-bit AVX2 kernels.
    Avx2 = 3,
}

impl Backend {
    /// Stable lower-case name, matching the `VCU_SIMD` vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }
}

/// 0 = uninitialised; otherwise a `Backend` discriminant. Benign race:
/// concurrent first calls compute the same value from the same env +
/// CPUID inputs, so double-initialisation is harmless.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn from_u8(v: u8) -> Backend {
    match v {
        1 => Backend::Scalar,
        2 => Backend::Sse2,
        3 => Backend::Avx2,
        _ => unreachable!("invalid backend discriminant {v}"),
    }
}

fn cpu_has(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => is_x86_feature_detected!("sse2"),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => is_x86_feature_detected!("avx2"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// Backends usable on this CPU, in ascending preference order
/// (`Scalar` first). `Scalar` is always present.
pub fn available_backends() -> Vec<Backend> {
    [Backend::Scalar, Backend::Sse2, Backend::Avx2]
        .into_iter()
        .filter(|&b| cpu_has(b))
        .collect()
}

fn best_available() -> Backend {
    *available_backends().last().unwrap_or(&Backend::Scalar)
}

/// Resolves `VCU_SIMD` against CPU features. A requested SIMD level the
/// CPU lacks degrades gracefully (`avx2` → `sse2` → `scalar`); an
/// unknown value is a hard error so typos can't silently change what a
/// benchmark measured.
fn default_backend() -> Backend {
    match std::env::var("VCU_SIMD").unwrap_or_default().as_str() {
        "off" | "scalar" => Backend::Scalar,
        "sse2" => {
            if cpu_has(Backend::Sse2) {
                Backend::Sse2
            } else {
                Backend::Scalar
            }
        }
        "avx2" => {
            if cpu_has(Backend::Avx2) {
                Backend::Avx2
            } else if cpu_has(Backend::Sse2) {
                Backend::Sse2
            } else {
                Backend::Scalar
            }
        }
        "" | "auto" => best_available(),
        other => panic!("unknown VCU_SIMD value {other:?}; expected off|sse2|avx2|auto"),
    }
}

/// The process-wide active backend, initialising from `VCU_SIMD` on
/// first use.
pub fn backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let b = default_backend();
            ACTIVE.store(b as u8, Ordering::Relaxed);
            b
        }
        v => from_u8(v),
    }
}

/// Overrides the process-wide backend (tests / benches).
///
/// # Panics
///
/// Panics if the CPU does not support `b`.
pub fn set_backend(b: Backend) {
    assert!(cpu_has(b), "backend {} not supported by this CPU", b.name());
    ACTIVE.store(b as u8, Ordering::Relaxed);
}

// ----------------------------------------------------------------
// Dispatched kernels. Each `foo` reads the global backend and calls
// `foo_with`; the `_with` variant is the test/bench entry point.
// On non-x86_64 targets every backend resolves to the scalar path.
// ----------------------------------------------------------------

/// Plain SAD over two equal-length slices.
#[inline]
pub fn sad_slice(a: &[u8], b: &[u8]) -> u64 {
    sad_slice_with(backend(), a, b)
}

#[inline]
pub fn sad_slice_with(bk: Backend, a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    match bk {
        Backend::Scalar => scalar::sad_slice(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::sad_slice_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::sad_slice_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::sad_slice(a, b),
    }
}

/// Row-granular thresholded SAD over two `rows × bw` block buffers.
/// Returns `(sad, pixels_examined)`; see `scalar::sad_rows_thresholded`
/// for the metering contract.
#[inline]
pub fn sad_rows_thresholded(a: &[u8], b: &[u8], bw: usize, threshold: u64) -> (u64, u64) {
    sad_rows_thresholded_with(backend(), a, b, bw, threshold)
}

#[inline]
pub fn sad_rows_thresholded_with(
    bk: Backend,
    a: &[u8],
    b: &[u8],
    bw: usize,
    threshold: u64,
) -> (u64, u64) {
    debug_assert_eq!(a.len(), b.len());
    match bk {
        Backend::Scalar => scalar::sad_rows_thresholded(a, b, bw, threshold),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::sad_rows_thresholded_sse2(a, b, bw, threshold) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::sad_rows_thresholded_avx2(a, b, bw, threshold) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::sad_rows_thresholded(a, b, bw, threshold),
    }
}

/// Thresholded SAD of a block of `plane` at `(x, y)` against `other`,
/// with row-granular early exit. Out-of-bounds positions use the
/// plane's edge-clamped path (identical for every backend); in-bounds
/// positions vectorize over the plane rows directly.
#[inline]
pub fn plane_sad_block_thresholded(
    plane: &Plane,
    x: isize,
    y: isize,
    bw: usize,
    bh: usize,
    other: &[u8],
    threshold: u64,
) -> (u64, u64) {
    plane_sad_block_thresholded_with(backend(), plane, x, y, bw, bh, other, threshold)
}

#[inline]
#[allow(clippy::too_many_arguments)]
pub fn plane_sad_block_thresholded_with(
    bk: Backend,
    plane: &Plane,
    x: isize,
    y: isize,
    bw: usize,
    bh: usize,
    other: &[u8],
    threshold: u64,
) -> (u64, u64) {
    let in_bounds = x >= 0
        && y >= 0
        && (x as usize) + bw <= plane.width()
        && (y as usize) + bh <= plane.height();
    if !in_bounds {
        // Edge-clamped fetch: a clamped row decomposes into a
        // replicated left border + contiguous middle + replicated
        // right border, so SIMD backends stay exact here too.
        return match bk {
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => unsafe {
                x86::sad_block_clamped_sse2(
                    plane.data(),
                    plane.width(),
                    plane.height(),
                    x,
                    y,
                    bw,
                    bh,
                    other,
                    threshold,
                )
            },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe {
                x86::sad_block_clamped_avx2(
                    plane.data(),
                    plane.width(),
                    plane.height(),
                    x,
                    y,
                    bw,
                    bh,
                    other,
                    threshold,
                )
            },
            _ => plane.sad_block_thresholded(x, y, bw, bh, other, threshold),
        };
    }
    let (x, y) = (x as usize, y as usize);
    match bk {
        Backend::Scalar => {
            plane.sad_block_thresholded(x as isize, y as isize, bw, bh, other, threshold)
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe {
            x86::sad_block_thresholded_sse2(
                plane.data(),
                plane.width(),
                x,
                y,
                bw,
                bh,
                other,
                threshold,
            )
        },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe {
            x86::sad_block_thresholded_avx2(
                plane.data(),
                plane.width(),
                x,
                y,
                bw,
                bh,
                other,
                threshold,
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => plane.sad_block_thresholded(x as isize, y as isize, bw, bh, other, threshold),
    }
}

/// SATD over 8×8 Hadamard blocks (abs-diff fallback on partial edges).
#[inline]
pub fn satd(cur: &[u8], pred: &[u8], bw: usize, bh: usize) -> u64 {
    satd_with(backend(), cur, pred, bw, bh)
}

#[inline]
pub fn satd_with(bk: Backend, cur: &[u8], pred: &[u8], bw: usize, bh: usize) -> u64 {
    debug_assert_eq!(cur.len(), bw * bh);
    debug_assert_eq!(pred.len(), bw * bh);
    match bk {
        Backend::Scalar => scalar::satd(cur, pred, bw, bh),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::satd_sse2(cur, pred, bw, bh) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::satd_avx2(cur, pred, bw, bh) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::satd(cur, pred, bw, bh),
    }
}

/// Half-pel block fetch: the dispatched form of
/// [`Plane::copy_block_hpel`]. Full-pel fetches and blocks touching the
/// clamped border delegate to the plane (identical for every backend);
/// interior half-pel blocks use the vectorized 2-tap/4-tap kernels.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn plane_copy_block_hpel(
    plane: &Plane,
    x: isize,
    y: isize,
    fx: u8,
    fy: u8,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    plane_copy_block_hpel_with(backend(), plane, x, y, fx, fy, bw, bh, dst)
}

#[inline]
#[allow(clippy::too_many_arguments)]
pub fn plane_copy_block_hpel_with(
    bk: Backend,
    plane: &Plane,
    x: isize,
    y: isize,
    fx: u8,
    fy: u8,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    assert_eq!(dst.len(), bw * bh, "destination length mismatch");
    assert!(fx <= 1 && fy <= 1, "fractions are half-pel numerators");
    if (fx == 0 && fy == 0) || bk == Backend::Scalar {
        return plane.copy_block_hpel(x, y, fx, fy, bw, bh, dst);
    }
    #[cfg(not(target_arch = "x86_64"))]
    plane.copy_block_hpel(x, y, fx, fy, bw, bh, dst);
    #[cfg(target_arch = "x86_64")]
    {
        let need_w = bw + fx as usize;
        let need_h = bh + fy as usize;
        let interior = x >= 0
            && y >= 0
            && (x as usize) + need_w <= plane.width()
            && (y as usize) + need_h <= plane.height();
        if interior {
            return hpel_dispatch(
                bk,
                plane.data(),
                plane.width(),
                x as usize,
                y as usize,
                fx,
                fy,
                bw,
                bh,
                dst,
            );
        }
        // Border-touching fractional fetch: materialize the clamped
        // (bw+fx) x (bh+fy) support once, then run the same interior
        // kernels over it. The support holds exactly the `get_clamped`
        // values the scalar path reads, so the taps see identical
        // inputs and produce identical bytes.
        const MAX_SUPPORT: usize = 65 * 65;
        if need_w * need_h > MAX_SUPPORT {
            return plane.copy_block_hpel(x, y, fx, fy, bw, bh, dst);
        }
        let mut support = [0u8; MAX_SUPPORT];
        plane.copy_block_clamped(x, y, need_w, need_h, &mut support[..need_w * need_h]);
        hpel_dispatch(
            bk,
            &support[..need_w * need_h],
            need_w,
            0,
            0,
            fx,
            fy,
            bw,
            bh,
            dst,
        );
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
#[allow(clippy::too_many_arguments)]
fn hpel_dispatch(
    bk: Backend,
    data: &[u8],
    stride: usize,
    x: usize,
    y: usize,
    fx: u8,
    fy: u8,
    bw: usize,
    bh: usize,
    dst: &mut [u8],
) {
    match bk {
        Backend::Sse2 => unsafe {
            match (fx, fy) {
                (1, 0) => x86::hpel_h_sse2(data, stride, x, y, bw, bh, dst),
                (0, 1) => x86::hpel_v_sse2(data, stride, x, y, bw, bh, dst),
                _ => x86::hpel_hv_sse2(data, stride, x, y, bw, bh, dst),
            }
        },
        Backend::Avx2 => unsafe {
            match (fx, fy) {
                (1, 0) => x86::hpel_h_avx2(data, stride, x, y, bw, bh, dst),
                (0, 1) => x86::hpel_v_avx2(data, stride, x, y, bw, bh, dst),
                _ => x86::hpel_hv_avx2(data, stride, x, y, bw, bh, dst),
            }
        },
        Backend::Scalar => unreachable!("scalar backend is handled by the caller"),
    }
}

/// Spatial residual `cur - pred` as i16.
#[inline]
pub fn compute_residual(cur: &[u8], pred: &[u8], out: &mut [i16]) {
    compute_residual_with(backend(), cur, pred, out)
}

#[inline]
pub fn compute_residual_with(bk: Backend, cur: &[u8], pred: &[u8], out: &mut [i16]) {
    debug_assert_eq!(cur.len(), pred.len());
    debug_assert_eq!(cur.len(), out.len());
    match bk {
        Backend::Scalar => scalar::compute_residual(cur, pred, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::compute_residual_sse2(cur, pred, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::compute_residual_avx2(cur, pred, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::compute_residual(cur, pred, out),
    }
}

/// Reconstruction add: `out[i] = clamp(pred[i] + resid[i], 0, 255)`.
#[inline]
pub fn add_residual_clamp(pred: &[u8], resid: &[i16], out: &mut [u8]) {
    add_residual_clamp_with(backend(), pred, resid, out)
}

#[inline]
pub fn add_residual_clamp_with(bk: Backend, pred: &[u8], resid: &[i16], out: &mut [u8]) {
    debug_assert_eq!(pred.len(), resid.len());
    debug_assert_eq!(pred.len(), out.len());
    match bk {
        Backend::Scalar => scalar::add_residual_clamp(pred, resid, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::add_residual_clamp_sse2(pred, resid, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::add_residual_clamp_avx2(pred, resid, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::add_residual_clamp(pred, resid, out),
    }
}

/// Compound-prediction average `a[i] = ceil((a[i] + b[i]) / 2)`.
#[inline]
pub fn avg_u8_inplace(a: &mut [u8], b: &[u8]) {
    avg_u8_inplace_with(backend(), a, b)
}

#[inline]
pub fn avg_u8_inplace_with(bk: Backend, a: &mut [u8], b: &[u8]) {
    debug_assert_eq!(a.len(), b.len());
    match bk {
        Backend::Scalar => scalar::avg_u8_inplace(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::avg_u8_inplace_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::avg_u8_inplace_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::avg_u8_inplace(a, b),
    }
}

/// Temporal-filter blend `acc[i] += src[i] * weight` (independent f64
/// chains, so lane grouping cannot change rounding).
#[inline]
pub fn blend_accumulate(acc: &mut [f64], src: &[u8], weight: f64) {
    blend_accumulate_with(backend(), acc, src, weight)
}

#[inline]
pub fn blend_accumulate_with(bk: Backend, acc: &mut [f64], src: &[u8], weight: f64) {
    debug_assert_eq!(acc.len(), src.len());
    match bk {
        Backend::Scalar => scalar::blend_accumulate(acc, src, weight),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::blend_accumulate_sse2(acc, src, weight) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::blend_accumulate_avx2(acc, src, weight) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::blend_accumulate(acc, src, weight),
    }
}

/// Separable-transform pass with strided output: `out[q*n + j] = Σ_s
/// m_rows[q*n + s] * input[j*n + s]`. `m_cols` must be the transpose of
/// `m_rows` (SIMD backends load matrix columns contiguously; scalar
/// reads `m_rows` exactly as the pre-kernel code did). Per-output
/// accumulation order is ascending `s` in every backend, so f64 results
/// are bit-identical.
#[inline]
pub fn tx_pass_strided(m_rows: &[f64], m_cols: &[f64], input: &[f64], n: usize, out: &mut [f64]) {
    tx_pass_strided_with(backend(), m_rows, m_cols, input, n, out)
}

#[inline]
pub fn tx_pass_strided_with(
    bk: Backend,
    m_rows: &[f64],
    m_cols: &[f64],
    input: &[f64],
    n: usize,
    out: &mut [f64],
) {
    debug_assert!(n.is_multiple_of(2), "transform sizes are even");
    match bk {
        Backend::Scalar => scalar::tx_pass_strided(m_rows, input, n, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::tx_pass_strided_sse2(m_cols, input, n, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe {
            if n.is_multiple_of(4) {
                x86::tx_pass_strided_avx2(m_cols, input, n, out)
            } else {
                x86::tx_pass_strided_sse2(m_cols, input, n, out)
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::tx_pass_strided(m_rows, input, n, out),
    }
}

/// Separable-transform pass with contiguous output: `out[j*n + q] = Σ_s
/// input[j*n + s] * m_rows[q*n + s]`. Same `m_cols` contract as
/// [`tx_pass_strided`].
#[inline]
pub fn tx_pass_contig(m_rows: &[f64], m_cols: &[f64], input: &[f64], n: usize, out: &mut [f64]) {
    tx_pass_contig_with(backend(), m_rows, m_cols, input, n, out)
}

#[inline]
pub fn tx_pass_contig_with(
    bk: Backend,
    m_rows: &[f64],
    m_cols: &[f64],
    input: &[f64],
    n: usize,
    out: &mut [f64],
) {
    debug_assert!(n.is_multiple_of(2), "transform sizes are even");
    match bk {
        Backend::Scalar => scalar::tx_pass_contig(m_rows, input, n, out),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::tx_pass_contig_sse2(m_cols, input, n, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe {
            if n.is_multiple_of(4) {
                x86::tx_pass_contig_avx2(m_cols, input, n, out)
            } else {
                x86::tx_pass_contig_sse2(m_cols, input, n, out)
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::tx_pass_contig(m_rows, input, n, out),
    }
}

/// Rounds each f64 half-away-from-zero, clamps to the i16 range, and
/// narrows — the inverse transform's final store. SSE2 lacks the
/// truncating `round_pd` the exact vector decomposition needs, so only
/// AVX2 diverges from the scalar loop (bit-identically; see `x86.rs`).
#[inline]
pub fn round_clamp_i16(src: &[f64], out: &mut [i16]) {
    round_clamp_i16_with(backend(), src, out)
}

#[inline]
pub fn round_clamp_i16_with(bk: Backend, src: &[f64], out: &mut [i16]) {
    debug_assert_eq!(src.len(), out.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::round_clamp_i16_avx2(src, out) },
        _ => scalar::round_clamp_i16(src, out),
    }
}

/// Dead-zone quantization of transform coefficients to integer
/// levels. Inputs must be finite (transform outputs always are); on
/// finite inputs the AVX2 path is bit-identical — `vdivpd` is the
/// same correctly-rounded division, `floor` maps to `round_pd`
/// toward negative infinity, and the magnitude cap commutes with the
/// f64→i32 conversion (see `x86.rs`). SSE2 lacks `round_pd`, so only
/// AVX2 diverges from the scalar loop.
#[inline]
pub fn quantize_levels(coeffs: &[f64], step: f64, deadzone: f64, levels: &mut [i32]) {
    quantize_levels_with(backend(), coeffs, step, deadzone, levels)
}

#[inline]
pub fn quantize_levels_with(
    bk: Backend,
    coeffs: &[f64],
    step: f64,
    deadzone: f64,
    levels: &mut [i32],
) {
    debug_assert_eq!(coeffs.len(), levels.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::quantize_levels_avx2(coeffs, step, deadzone, levels) },
        _ => scalar::quantize_levels(coeffs, step, deadzone, levels),
    }
}

/// Reconstructs coefficient values from quantized levels. The i32→f64
/// widening is exact and the multiply is the same IEEE operation in
/// every backend, so the result is bit-identical by construction.
#[inline]
pub fn dequantize_coeffs(levels: &[i32], step: f64, coeffs: &mut [f64]) {
    dequantize_coeffs_with(backend(), levels, step, coeffs)
}

#[inline]
pub fn dequantize_coeffs_with(bk: Backend, levels: &[i32], step: f64, coeffs: &mut [f64]) {
    debug_assert_eq!(levels.len(), coeffs.len());
    match bk {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::dequantize_coeffs_avx2(levels, step, coeffs) },
        _ => scalar::dequantize_coeffs(levels, step, coeffs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        let avail = available_backends();
        assert!(avail.contains(&Backend::Scalar));
        // Preference order is ascending.
        let mut sorted = avail.clone();
        sorted.sort();
        assert_eq!(avail, sorted);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Scalar, Backend::Sse2, Backend::Avx2] {
            assert_eq!(from_u8(b as u8), b);
            assert!(!b.name().is_empty());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_is_baseline_on_x86_64() {
        // SSE2 is architecturally guaranteed on x86_64.
        assert!(available_backends().contains(&Backend::Sse2));
    }
}
