//! Core codec types: profiles, QPs, motion vectors, frame kinds.

use std::fmt;

/// Coding specification profile implemented by the codec.
///
/// The paper's VCU encodes H.264 and VP9. We implement one from-scratch
/// block codec with two *profiles* whose toolsets mirror the relevant
/// differences: `Vp9Sim` has larger blocks, recursive partitioning,
/// more reference frames, compound prediction and temporal-filtered
/// alternate reference frames — so it compresses better and costs more
/// compute, exactly the relationship the paper's results depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Profile {
    /// H.264-like: 16×16 macroblocks, 8×8 transform, 1 reference frame.
    H264Sim,
    /// VP9-like: 64×64 superblocks, recursive partitioning to 16×16,
    /// 16×16/8×8 transforms, up to 3 reference frames, compound
    /// prediction, temporal-filter altref.
    Vp9Sim,
}

impl Profile {
    /// Superblock size in luma pixels (the "basic element of the
    /// pipelined computation", paper §3.2).
    pub const fn superblock_size(self) -> usize {
        match self {
            Profile::H264Sim => 16,
            Profile::Vp9Sim => 64,
        }
    }

    /// Maximum number of reference frames searched.
    pub const fn max_references(self) -> usize {
        match self {
            Profile::H264Sim => 1,
            Profile::Vp9Sim => 3,
        }
    }

    /// Whether compound (two-reference averaged) prediction is available.
    pub const fn supports_compound(self) -> bool {
        matches!(self, Profile::Vp9Sim)
    }

    /// Whether temporal-filtered alternate reference frames are available.
    pub const fn supports_altref(self) -> bool {
        matches!(self, Profile::Vp9Sim)
    }

    /// Short lowercase name ("h264" / "vp9").
    pub const fn name(self) -> &'static str {
        match self {
            Profile::H264Sim => "h264",
            Profile::Vp9Sim => "vp9",
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Quantization parameter, 0 (near lossless) to 63 (coarsest).
///
/// The quantizer step size doubles every 6 QP steps, like H.264/VP9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qp(u8);

impl Qp {
    /// Minimum QP.
    pub const MIN: Qp = Qp(0);
    /// Maximum QP.
    pub const MAX: Qp = Qp(63);

    /// Creates a QP, clamping into `[0, 63]`.
    pub fn new(v: u8) -> Qp {
        Qp(v.min(63))
    }

    /// Raw value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Quantizer step size: `2^((qp-12)/6)` scaled so QP 24 has step 4.
    pub fn step(self) -> f64 {
        4.0 * 2f64.powf((self.0 as f64 - 24.0) / 6.0)
    }

    /// The RDO Lagrange multiplier conventionally tracks step².
    pub fn lambda(self) -> f64 {
        0.57 * self.step() * self.step()
    }

    /// Returns a QP offset by `d`, clamped to the valid range.
    pub fn offset(self, d: i32) -> Qp {
        Qp((self.0 as i32 + d).clamp(0, 63) as u8)
    }
}

impl fmt::Display for Qp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// A motion vector in half-pel units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MotionVector {
    /// Horizontal component, half-pel units (positive = right).
    pub x: i16,
    /// Vertical component, half-pel units (positive = down).
    pub y: i16,
}

impl MotionVector {
    /// The zero vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Creates a motion vector from half-pel components.
    pub fn new(x: i16, y: i16) -> Self {
        MotionVector { x, y }
    }

    /// Creates a full-pel motion vector.
    pub fn full_pel(x: i16, y: i16) -> Self {
        MotionVector { x: x * 2, y: y * 2 }
    }

    /// True if both components land on integer pixels.
    pub fn is_full_pel(self) -> bool {
        self.x % 2 == 0 && self.y % 2 == 0
    }
}

/// How a frame is coded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Intra-only keyframe; resets the reference buffer.
    Key,
    /// Inter-predicted frame.
    Inter,
    /// Non-displayable synthetic alternate reference frame built by the
    /// temporal filter (VP9 profile only; paper §3.2).
    AltRef,
}

impl FrameKind {
    /// Whether this frame is shown to the viewer (altrefs are not).
    pub fn is_displayable(self) -> bool {
        !matches!(self, FrameKind::AltRef)
    }
}

/// Errors reported by encode/decode entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The bitstream ended prematurely or failed a consistency check.
    CorruptBitstream(&'static str),
    /// Header declared a profile/dimension combination we cannot decode.
    Unsupported(&'static str),
    /// Encoder configuration rejected.
    InvalidConfig(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::CorruptBitstream(m) => write!(f, "corrupt bitstream: {m}"),
            CodecError::Unsupported(m) => write!(f, "unsupported stream: {m}"),
            CodecError::InvalidConfig(m) => write!(f, "invalid encoder config: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_step_doubles_every_six() {
        let a = Qp::new(24).step();
        let b = Qp::new(30).step();
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn qp_clamps() {
        assert_eq!(Qp::new(200), Qp::MAX);
        assert_eq!(Qp::new(5).offset(-100), Qp::MIN);
        assert_eq!(Qp::new(60).offset(100), Qp::MAX);
    }

    #[test]
    fn lambda_monotone() {
        assert!(Qp::new(40).lambda() > Qp::new(20).lambda());
    }

    #[test]
    fn profile_parameters() {
        assert_eq!(Profile::H264Sim.superblock_size(), 16);
        assert_eq!(Profile::Vp9Sim.superblock_size(), 64);
        assert!(Profile::Vp9Sim.supports_compound());
        assert!(!Profile::H264Sim.supports_altref());
        assert_eq!(Profile::Vp9Sim.max_references(), 3);
    }

    #[test]
    fn mv_full_pel() {
        assert!(MotionVector::full_pel(3, -2).is_full_pel());
        assert!(!MotionVector::new(1, 0).is_full_pel());
        assert_eq!(MotionVector::ZERO, MotionVector::default());
    }

    #[test]
    fn altref_not_displayable() {
        assert!(!FrameKind::AltRef.is_displayable());
        assert!(FrameKind::Key.is_displayable());
    }

    #[test]
    fn error_display() {
        let e = CodecError::CorruptBitstream("bad magic");
        assert!(e.to_string().contains("bad magic"));
    }
}
