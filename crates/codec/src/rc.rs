//! Rate control: first-pass analysis, frame-type planning, QP assignment.
//!
//! Mirrors the paper's encoding regimes (§2.1): one-pass low-latency,
//! two-pass low-latency, lagged two-pass, and offline two-pass. The
//! first pass collects per-frame complexity statistics (cheap intra and
//! inter costs on a coarse grid); the second pass uses whatever window
//! of those statistics the latency mode permits to place keyframes and
//! allocate bits, with a feedback loop absorbing model error.

use crate::config::{EncoderConfig, PassMode, RateControl};
use crate::types::{FrameKind, Qp};
use vcu_media::{Frame, Video};

/// Per-frame first-pass statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStats {
    /// Mean absolute deviation from block means (intra complexity).
    pub intra_cost: f64,
    /// Mean absolute zero-motion difference from the previous frame
    /// (inter complexity; equals `intra_cost` for the first frame).
    pub inter_cost: f64,
}

impl FrameStats {
    /// Ratio of inter to intra cost; near/above 1 means the previous
    /// frame does not predict this one (scene cut).
    pub fn cut_score(&self) -> f64 {
        if self.intra_cost <= 1e-9 {
            0.0
        } else {
            self.inter_cost / self.intra_cost
        }
    }
}

/// Grid granularity for first-pass analysis.
const FP_GRID: usize = 16;

/// Runs the (cheap) first pass over a video.
pub fn first_pass(video: &Video) -> Vec<FrameStats> {
    let mut out = Vec::with_capacity(video.frames.len());
    let mut prev: Option<&Frame> = None;
    for f in &video.frames {
        let intra = intra_complexity(f);
        let inter = match prev {
            Some(p) => inter_complexity(f, p),
            None => intra,
        };
        out.push(FrameStats {
            intra_cost: intra,
            inter_cost: inter,
        });
        prev = Some(f);
    }
    out
}

fn intra_complexity(f: &Frame) -> f64 {
    let (w, h) = (f.width(), f.height());
    let mut total = 0.0;
    let mut blocks = 0u64;
    let mut blk = vec![0u8; FP_GRID * FP_GRID];
    let mut y = 0;
    while y + FP_GRID <= h {
        let mut x = 0;
        while x + FP_GRID <= w {
            f.y()
                .copy_block_clamped(x as isize, y as isize, FP_GRID, FP_GRID, &mut blk);
            let mean = blk.iter().map(|&v| v as u64).sum::<u64>() / blk.len() as u64;
            let mad: u64 = blk
                .iter()
                .map(|&v| (v as i64 - mean as i64).unsigned_abs())
                .sum();
            total += mad as f64 / blk.len() as f64;
            blocks += 1;
            x += FP_GRID;
        }
        y += FP_GRID;
    }
    if blocks == 0 {
        0.0
    } else {
        total / blocks as f64
    }
}

fn inter_complexity(f: &Frame, prev: &Frame) -> f64 {
    let n = (f.width() * f.height()) as f64;
    let sad: u64 = f
        .y()
        .data()
        .iter()
        .zip(prev.y().data())
        .map(|(a, b)| (*a as i32 - *b as i32).unsigned_abs() as u64)
        .sum();
    sad as f64 / n
}

/// Scene-cut threshold on [`FrameStats::cut_score`].
const CUT_THRESHOLD: f64 = 0.9;

/// Plans the frame kind for every source frame.
///
/// Keyframes are forced at frame 0 and every `keyframe_interval`;
/// adaptive scene-cut keyframes additionally fire when first-pass
/// statistics are available and show an unpredictable frame.
pub fn plan_frame_kinds(
    cfg: &EncoderConfig,
    n_frames: usize,
    stats: Option<&[FrameStats]>,
) -> Vec<FrameKind> {
    let mut kinds = Vec::with_capacity(n_frames);
    let mut since_key = 0usize;
    for i in 0..n_frames {
        let forced = i == 0 || since_key >= cfg.keyframe_interval;
        let cut = stats
            .and_then(|s| s.get(i))
            .map(|s| s.cut_score() > CUT_THRESHOLD)
            .unwrap_or(false);
        if forced || (cut && since_key > 4) {
            kinds.push(FrameKind::Key);
            since_key = 1;
        } else {
            kinds.push(FrameKind::Inter);
            since_key += 1;
        }
    }
    kinds
}

/// Stateful QP assigner for a single encode.
#[derive(Debug)]
pub struct RateController {
    mode: RateControl,
    /// Target bits per displayable frame (bitrate mode).
    target_bpf: f64,
    /// Accumulated overshoot in bits (positive = over budget).
    excess: f64,
    /// Current base QP estimate.
    base_qp: f64,
    /// Per-frame complexity statistics, when a first pass ran.
    stats: Vec<FrameStats>,
    /// Mean complexity over the window the pass mode may see.
    pass: PassMode,
}

impl RateController {
    /// Creates a controller for a video of `n_frames` at `fps`.
    pub fn new(cfg: &EncoderConfig, fps: f64, stats: Vec<FrameStats>) -> Self {
        match cfg.rc {
            RateControl::ConstQp(qp) => RateController {
                mode: cfg.rc,
                target_bpf: 0.0,
                excess: 0.0,
                base_qp: qp.value() as f64,
                stats,
                pass: PassMode::TwoPassOffline,
            },
            RateControl::Bitrate { bps, pass } => RateController {
                mode: cfg.rc,
                target_bpf: bps as f64 / fps,
                excess: 0.0,
                // Initial guess; feedback converges within a few frames.
                base_qp: 34.0,
                stats,
                pass,
            },
        }
    }

    /// QP for frame `i` of kind `kind` (before toolset offsets).
    pub fn frame_qp(&self, i: usize, kind: FrameKind, n_frames: usize) -> Qp {
        let mut qp = self.base_qp;
        if let RateControl::Bitrate { .. } = self.mode {
            // Complexity-aware allocation: allocate more bits (lower
            // QP) to frames more complex than the visible-window mean.
            if !self.stats.is_empty() {
                let lookahead = self.pass.lookahead(i, n_frames);
                let lo = i.saturating_sub(16);
                let hi = (i + lookahead + 1).min(self.stats.len());
                let window = &self.stats[lo..hi];
                let mean: f64 =
                    window.iter().map(|s| s.inter_cost).sum::<f64>() / window.len() as f64;
                let this = self.stats[i].inter_cost;
                if mean > 1e-9 && this > 1e-9 {
                    // +/- up to ~4 QP steps of redistribution.
                    qp -= 6.0 * (this / mean).log2().clamp(-0.7, 0.7);
                }
            }
        }
        let q = Qp::new(qp.round().clamp(0.0, 63.0) as u8);
        match kind {
            FrameKind::Key => q, // toolset applies its own keyframe boost
            FrameKind::Inter => q,
            FrameKind::AltRef => q,
        }
    }

    /// Feedback after coding a displayable frame of `actual_bits`.
    pub fn update(&mut self, actual_bits: u64) {
        if let RateControl::Bitrate { .. } = self.mode {
            self.excess += actual_bits as f64 - self.target_bpf;
            // Proportional controller: each frame of accumulated
            // overshoot nudges QP up by ~2 steps (rate roughly halves
            // every 6 QP, so this converges quickly without ringing).
            let frames_of_excess = (self.excess / self.target_bpf).clamp(-8.0, 8.0);
            self.base_qp = (self.base_qp + 0.6 * frames_of_excess).clamp(2.0, 62.0);
            // Bleed the integrator so ancient history stops dominating.
            self.excess *= 0.9;
        }
    }

    /// Current base QP (for tests/diagnostics).
    pub fn base_qp(&self) -> f64 {
        self.base_qp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Profile;
    use vcu_media::synth::{ContentClass, SynthSpec};
    use vcu_media::Resolution;

    fn video_with_cut() -> Video {
        let content = ContentClass {
            scene_cut_period: Some(6),
            ..ContentClass::talking_head()
        };
        SynthSpec::new(Resolution::R144, 12, content, 3).generate()
    }

    #[test]
    fn first_pass_detects_scene_cut() {
        let v = video_with_cut();
        let stats = first_pass(&v);
        // Frame 6 is the cut: inter cost spikes relative to intra.
        assert!(
            stats[6].cut_score() > stats[3].cut_score() * 2.0,
            "cut {} vs steady {}",
            stats[6].cut_score(),
            stats[3].cut_score()
        );
    }

    #[test]
    fn plan_places_key_at_cut() {
        let v = video_with_cut();
        let stats = first_pass(&v);
        let cfg = EncoderConfig::const_qp(Profile::Vp9Sim, Qp::new(30));
        let kinds = plan_frame_kinds(&cfg, v.frames.len(), Some(&stats));
        assert_eq!(kinds[0], FrameKind::Key);
        assert_eq!(kinds[6], FrameKind::Key, "kinds: {kinds:?}");
        assert_eq!(kinds[3], FrameKind::Inter);
    }

    #[test]
    fn plan_respects_max_interval() {
        let mut cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(30));
        cfg.keyframe_interval = 5;
        let kinds = plan_frame_kinds(&cfg, 12, None);
        assert_eq!(kinds[0], FrameKind::Key);
        assert_eq!(kinds[5], FrameKind::Key);
        assert_eq!(kinds[10], FrameKind::Key);
        assert_eq!(kinds.iter().filter(|k| **k == FrameKind::Key).count(), 3);
    }

    #[test]
    fn const_qp_is_constant() {
        let cfg = EncoderConfig::const_qp(Profile::H264Sim, Qp::new(33));
        let rc = RateController::new(&cfg, 30.0, Vec::new());
        for i in 0..5 {
            assert_eq!(rc.frame_qp(i, FrameKind::Inter, 10), Qp::new(33));
        }
    }

    #[test]
    fn feedback_raises_qp_on_overshoot() {
        let cfg = EncoderConfig::bitrate(Profile::H264Sim, 300_000, PassMode::OnePassLowLatency);
        let mut rc = RateController::new(&cfg, 30.0, Vec::new());
        let q0 = rc.base_qp();
        for _ in 0..10 {
            rc.update(100_000); // 10x over the 10k target
        }
        assert!(rc.base_qp() > q0 + 3.0, "qp {} -> {}", q0, rc.base_qp());
    }

    #[test]
    fn feedback_lowers_qp_on_undershoot() {
        let cfg = EncoderConfig::bitrate(Profile::H264Sim, 300_000, PassMode::OnePassLowLatency);
        let mut rc = RateController::new(&cfg, 30.0, Vec::new());
        let q0 = rc.base_qp();
        for _ in 0..10 {
            rc.update(100);
        }
        assert!(rc.base_qp() < q0 - 2.0);
    }

    #[test]
    fn offline_mode_redistributes_by_complexity() {
        let v = video_with_cut();
        let stats = first_pass(&v);
        let cfg = EncoderConfig::bitrate(Profile::Vp9Sim, 500_000, PassMode::TwoPassOffline);
        let rc = RateController::new(&cfg, 30.0, stats.clone());
        // The cut frame (high complexity) should get a lower QP than a
        // calm frame.
        let qp_cut = rc.frame_qp(6, FrameKind::Inter, v.frames.len());
        let qp_calm = rc.frame_qp(3, FrameKind::Inter, v.frames.len());
        assert!(
            qp_cut < qp_calm,
            "cut qp {qp_cut} should be below calm qp {qp_calm}"
        );
    }
}
