//! Workload generators for the VCU reproduction.
//!
//! The paper evaluates on vbench plus production traffic we cannot
//! redistribute; this crate synthesizes both: a [`vbench`]-like
//! 15-clip suite spanning resolution × frame-rate × entropy, a
//! [`popularity`] model (stretched power law, three buckets, §2.2),
//! [`traffic`] generators for upload and live request streams, a
//! [`viewing`] model (popularity-weighted catalog + viewer-session
//! arrivals) feeding the online serving layer, and [`diurnal`]
//! time-of-day demand curves that phase-shift per region for the
//! multi-region simulation.
pub mod diurnal;
pub mod popularity;
pub mod traffic;
pub mod vbench;
pub mod viewing;

pub use diurnal::{DiurnalCurve, DAY_S};
pub use popularity::{PopularityBucket, PopularityModel, Treatment};
pub use traffic::{LiveTraffic, Request, UploadTraffic, WorkloadFamily};
pub use vbench::{suite, SuiteScale, VbenchClip};
pub use viewing::{Catalog, CatalogVideo, ViewerSessions};
