//! Upload and live-stream traffic generators.
//!
//! Deterministic (seeded) synthetic stand-ins for the production
//! workloads of §2.2: YouTube-style uploads ("multiple hundreds of
//! hours of video every minute"), Photos/Drive archival, and YouTube
//! Live ("hundreds of thousands of concurrent streams"). The cluster
//! simulator consumes these request streams.

use crate::popularity::{PopularityBucket, PopularityModel};
use vcu_media::Resolution;
use vcu_rng::Rng;

/// The workload families of §2.2, each with its own latency target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// Video-sharing uploads (minutes-to-hours latency budget).
    Upload,
    /// Photos / Drive archival (hours).
    Archival,
    /// Live streaming (~100 ms to seconds).
    Live,
    /// Cloud gaming (lowest latency, §4.5's Stadia).
    Gaming,
}

/// One transcode request arriving at the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Arrival time in seconds since epoch of the simulation.
    pub arrival_s: f64,
    /// Workload family.
    pub family: WorkloadFamily,
    /// Input resolution.
    pub resolution: Resolution,
    /// Input frame rate.
    pub fps: f64,
    /// Video duration in seconds.
    pub duration_s: f64,
    /// Popularity bucket (decides treatment).
    pub popularity: PopularityBucket,
}

/// Upload resolution mix (roughly matching public upload statistics:
/// mobile-dominated mid resolutions with a 4K head).
const UPLOAD_MIX: [(Resolution, f64); 6] = [
    (Resolution::R2160, 0.06),
    (Resolution::R1440, 0.06),
    (Resolution::R1080, 0.38),
    (Resolution::R720, 0.30),
    (Resolution::R480, 0.14),
    (Resolution::R360, 0.06),
];

/// Generator for a stream of upload requests.
#[derive(Debug, Clone)]
pub struct UploadTraffic {
    /// Mean arrival rate in requests/second.
    pub rate_per_s: f64,
    /// Popularity model.
    pub popularity: PopularityModel,
    /// RNG seed.
    pub seed: u64,
}

impl UploadTraffic {
    /// Creates a generator at `rate_per_s` requests per second.
    pub fn new(rate_per_s: f64, seed: u64) -> Self {
        assert!(rate_per_s > 0.0, "rate must be positive");
        UploadTraffic {
            rate_per_s,
            popularity: PopularityModel::default(),
            seed,
        }
    }

    /// Generates all requests arriving within `horizon_s` seconds.
    pub fn generate(&self, horizon_s: f64) -> Vec<Request> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut t = 0.0f64;
        let mut out = Vec::new();
        loop {
            // Exponential inter-arrival times (Poisson process).
            t += rng.exponential(self.rate_per_s);
            if t >= horizon_s {
                break;
            }
            let resolution = pick_resolution(&mut rng);
            let fps = if rng.gen_bool(0.25) { 60.0 } else { 30.0 };
            // Log-normal-ish duration: mostly short, some long.
            let d: f64 = rng.gen_range(0.0f64..1.0);
            let duration_s = 15.0 * (1.0 + 40.0 * d * d * d);
            let views = self.popularity.sample_views(&mut rng);
            out.push(Request {
                arrival_s: t,
                family: WorkloadFamily::Upload,
                resolution,
                fps,
                duration_s,
                popularity: self.popularity.bucket(views),
            });
        }
        out
    }
}

fn pick_resolution(rng: &mut Rng) -> Resolution {
    let x: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for (r, p) in UPLOAD_MIX {
        acc += p;
        if x < acc {
            return r;
        }
    }
    Resolution::R360
}

/// Generator for concurrent live streams.
#[derive(Debug, Clone)]
pub struct LiveTraffic {
    /// Concurrent streams to maintain.
    pub concurrent: usize,
    /// Mean stream length in seconds.
    pub mean_length_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LiveTraffic {
    /// Creates a live-traffic generator.
    pub fn new(concurrent: usize, mean_length_s: f64, seed: u64) -> Self {
        LiveTraffic {
            concurrent,
            mean_length_s,
            seed,
        }
    }

    /// Generates the session start events for `horizon_s`: whenever a
    /// stream ends another starts, keeping `concurrent` running.
    pub fn generate(&self, horizon_s: f64) -> Vec<Request> {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0x11FE);
        let mut out = Vec::new();
        for slot in 0..self.concurrent {
            let mut t = 0.0f64;
            // Stagger initial starts.
            t += rng.gen_range(0.0..self.mean_length_s * 0.1);
            while t < horizon_s {
                let len = rng
                    .exponential(1.0 / self.mean_length_s)
                    .clamp(30.0, horizon_s);
                let resolution = if rng.gen_bool(0.3) {
                    Resolution::R1080
                } else {
                    Resolution::R720
                };
                out.push(Request {
                    arrival_s: t,
                    family: WorkloadFamily::Live,
                    resolution,
                    fps: if slot % 5 == 0 { 60.0 } else { 30.0 },
                    duration_s: len,
                    popularity: PopularityBucket::Middle,
                });
                t += len;
            }
        }
        out.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_rate_is_respected() {
        let g = UploadTraffic::new(2.0, 42);
        let reqs = g.generate(1000.0);
        let rate = reqs.len() as f64 / 1000.0;
        assert!((1.8..2.2).contains(&rate), "rate {rate}");
    }

    #[test]
    fn uploads_are_sorted_and_in_horizon() {
        let reqs = UploadTraffic::new(5.0, 1).generate(100.0);
        assert!(reqs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(reqs.iter().all(|r| r.arrival_s < 100.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = UploadTraffic::new(3.0, 9).generate(50.0);
        let b = UploadTraffic::new(3.0, 9).generate(50.0);
        assert_eq!(a, b);
    }

    #[test]
    fn resolution_mix_shape() {
        let reqs = UploadTraffic::new(20.0, 5).generate(500.0);
        let n = reqs.len() as f64;
        let frac = |r: Resolution| reqs.iter().filter(|q| q.resolution == r).count() as f64 / n;
        assert!(frac(Resolution::R1080) > 0.25, "1080p share");
        assert!(frac(Resolution::R2160) < 0.15, "4k share");
    }

    #[test]
    fn live_maintains_concurrency() {
        let g = LiveTraffic::new(10, 300.0, 3);
        let reqs = g.generate(3600.0);
        // At time 1800, roughly 10 streams should be active.
        let active = reqs
            .iter()
            .filter(|r| r.arrival_s <= 1800.0 && r.arrival_s + r.duration_s > 1800.0)
            .count();
        assert!((7..=13).contains(&active), "active {active}");
    }
}
