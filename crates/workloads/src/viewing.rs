//! Viewer-side workload: a popularity-weighted video catalog and the
//! session arrival model behind the serving front end.
//!
//! §2.2's stretched power law decides *what* gets watched: each
//! catalog video draws an expected-view weight from
//! [`PopularityModel::sample_views`], so a tiny head of videos absorbs
//! most playback sessions. A session plays one video start-to-finish
//! as a sequence of fixed-duration segment requests; the serving layer
//! (`vcu-serve`) turns cache misses into on-demand transcode jobs.

use crate::popularity::{PopularityBucket, PopularityModel};
use vcu_rng::Rng;

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct CatalogVideo {
    /// Expected-view weight (Pareto-distributed); sampling probability
    /// is proportional to this.
    pub weight: f64,
    /// Number of fixed-duration segments in the video.
    pub segments: u32,
    /// Whether the video falls in the popularity head bucket — the
    /// cache pins head segments in its protected tier.
    pub head: bool,
}

/// A popularity-weighted video catalog with O(log n) weighted
/// sampling.
///
/// The head/tail split is fixed at generation time from each video's
/// sampled view weight, so cache-tier assignment is a property of the
/// catalog (history-independent), not of the request stream.
#[derive(Debug, Clone)]
pub struct Catalog {
    videos: Vec<CatalogVideo>,
    /// Cumulative weights; `cum[i]` = sum of weights `0..=i`.
    cum: Vec<f64>,
    total_segments: u64,
    head_count: usize,
}

impl Catalog {
    /// Generates `n_videos` entries: Pareto view weights from `model`,
    /// segment counts uniform in `seg_min..=seg_max`. Deterministic in
    /// `seed`.
    pub fn generate(
        n_videos: usize,
        model: &PopularityModel,
        seg_min: u32,
        seg_max: u32,
        seed: u64,
    ) -> Self {
        assert!(n_videos > 0, "empty catalog");
        assert!(seg_min >= 1 && seg_min <= seg_max, "bad segment range");
        let mut rng = Rng::seed_from_u64(seed);
        let mut videos = Vec::with_capacity(n_videos);
        let mut cum = Vec::with_capacity(n_videos);
        let mut acc = 0.0f64;
        let mut total_segments = 0u64;
        let mut head_count = 0usize;
        for _ in 0..n_videos {
            let views = model.sample_views(&mut rng);
            let head = model.bucket(views) == PopularityBucket::Head;
            let segments = rng.gen_range(seg_min..=seg_max);
            acc += views;
            cum.push(acc);
            total_segments += segments as u64;
            head_count += head as usize;
            videos.push(CatalogVideo {
                weight: views,
                segments,
                head,
            });
        }
        Catalog {
            videos,
            cum,
            total_segments,
            head_count,
        }
    }

    /// Samples a video index with probability proportional to its
    /// weight (one `rng.f64()` draw + binary search).
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        let total = *self.cum.last().expect("non-empty catalog");
        let x = rng.f64() * total;
        self.cum
            .partition_point(|&c| c <= x)
            .min(self.videos.len() - 1) as u32
    }

    /// Number of segments in video `v`.
    pub fn segments(&self, v: u32) -> u32 {
        self.videos[v as usize].segments
    }

    /// Whether video `v` is in the popularity head.
    pub fn is_head(&self, v: u32) -> bool {
        self.videos[v as usize].head
    }

    /// Catalog size in videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// True when the catalog holds no videos (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Total segments across the catalog — the working-set size a
    /// segment cache is sized against.
    pub fn total_segments(&self) -> u64 {
        self.total_segments
    }

    /// Videos in the head bucket.
    pub fn head_count(&self) -> usize {
        self.head_count
    }

    /// Mean segments per video.
    pub fn mean_segments(&self) -> f64 {
        self.total_segments as f64 / self.videos.len() as f64
    }

    /// Direct access to an entry.
    pub fn video(&self, v: u32) -> &CatalogVideo {
        &self.videos[v as usize]
    }
}

/// Session arrival model: Poisson arrivals sized by Little's law so a
/// target number of viewers is concurrently mid-playback at steady
/// state.
///
/// A session watching an `n`-segment video of `segment_s`-second
/// segments stays for `n * segment_s` seconds, so holding
/// `target_concurrent` viewers needs an arrival rate of
/// `target_concurrent / mean_session_s` sessions per second.
#[derive(Debug, Clone, Copy)]
pub struct ViewerSessions {
    /// Viewers concurrently mid-playback at steady state.
    pub target_concurrent: f64,
    /// Mean session length, seconds (catalog mean segments × segment
    /// duration).
    pub mean_session_s: f64,
}

impl ViewerSessions {
    /// Little's law: sessions per second sustaining the target.
    pub fn arrival_rate_per_s(&self) -> f64 {
        assert!(self.mean_session_s > 0.0, "zero-length sessions");
        self.target_concurrent / self.mean_session_s
    }

    /// Draws the next interarrival gap, seconds.
    pub fn next_interarrival_s(&self, rng: &mut Rng) -> f64 {
        rng.exponential(self.arrival_rate_per_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(seed: u64) -> Catalog {
        Catalog::generate(5_000, &PopularityModel::default(), 4, 8, seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = catalog(9);
        let b = catalog(9);
        assert_eq!(a.total_segments(), b.total_segments());
        assert_eq!(a.head_count(), b.head_count());
        for v in 0..a.len() as u32 {
            assert_eq!(a.segments(v), b.segments(v));
            assert_eq!(a.is_head(v), b.is_head(v));
            assert_eq!(a.video(v).weight, b.video(v).weight);
        }
    }

    #[test]
    fn segment_counts_respect_bounds() {
        let c = catalog(11);
        for v in 0..c.len() as u32 {
            assert!((4..=8).contains(&c.segments(v)));
        }
        let mean = c.mean_segments();
        assert!((5.0..7.0).contains(&mean), "mean segments {mean}");
    }

    #[test]
    fn head_is_small_but_heavily_sampled() {
        let c = catalog(7);
        let head_frac = c.head_count() as f64 / c.len() as f64;
        assert!(head_frac < 0.05, "head fraction {head_frac}");
        assert!(c.head_count() > 0, "a 5k catalog should have a head");

        // Sampling follows the weights: head videos (a <5% sliver of
        // the catalog) should draw an outsized share of sessions.
        let mut rng = Rng::seed_from_u64(1);
        let mut head_draws = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if c.is_head(c.sample(&mut rng)) {
                head_draws += 1;
            }
        }
        let share = head_draws as f64 / n as f64;
        assert!(
            share > head_frac * 5.0,
            "head sampled share {share} vs catalog fraction {head_frac}"
        );
    }

    #[test]
    fn sample_is_uniformly_bounded() {
        let c = Catalog::generate(3, &PopularityModel::default(), 1, 1, 5);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!((c.sample(&mut rng) as usize) < c.len());
        }
    }

    #[test]
    fn littles_law_arrival_rate() {
        let s = ViewerSessions {
            target_concurrent: 1000.0,
            mean_session_s: 24.0,
        };
        assert!((s.arrival_rate_per_s() - 1000.0 / 24.0).abs() < 1e-12);
        // Mean interarrival ≈ 1/rate.
        let mut rng = Rng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_interarrival_s(&mut rng)).sum::<f64>() / n as f64;
        let expect = 24.0 / 1000.0;
        assert!(
            (mean - expect).abs() < expect * 0.05,
            "mean interarrival {mean} vs {expect}"
        );
    }
}
