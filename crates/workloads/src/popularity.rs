//! Video popularity model: stretched power law with three buckets.
//!
//! §2.2: "video popularity follows a stretched power law distribution,
//! with three broad buckets" — the very popular head (worth extra
//! compute to save egress), a modestly-watched middle, and the long
//! tail (minimize processing, keep playable). Popularity decides the
//! *treatment*: which formats and how much encoding effort a video
//! receives.

use vcu_rng::Rng;

/// The paper's three popularity buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PopularityBucket {
    /// Small fraction of videos, majority of watch time.
    Head,
    /// Modestly watched.
    Middle,
    /// The majority of uploads, watched rarely.
    Tail,
}

/// Treatment assigned to a video based on popularity (§4.5: without
/// VCUs, VP9 was only produced for the most popular videos; with VCUs
/// both formats are produced at upload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Treatment {
    /// Produce VP9 outputs (in addition to H.264).
    pub vp9: bool,
    /// Run the expensive multi-operating-point analysis pass.
    pub premium_analysis: bool,
}

/// Heavy-tailed popularity distribution over expected views:
/// a Pareto law `P(views > v) = (v / v0)^-alpha` with `alpha` just
/// above 1, so a tiny head of videos carries most of the watch time —
/// the defining property of §2.2's "stretched power law" description.
#[derive(Debug, Clone, Copy)]
pub struct PopularityModel {
    /// Tail exponent; `alpha ≈ 1.1` reproduces the head-dominated
    /// watch-time split typical of internet media (asymptotic head
    /// share ≈ 200^(1-alpha) of all views).
    pub alpha: f64,
    /// Scale (minimum views) parameter `v0`.
    pub scale: f64,
}

impl Default for PopularityModel {
    fn default() -> Self {
        PopularityModel {
            alpha: 1.05,
            scale: 40.0,
        }
    }
}

impl PopularityModel {
    /// Samples an expected view count.
    pub fn sample_views(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF of the Pareto distribution.
        let u: f64 = rng.gen_range(1e-12..1.0);
        self.scale * u.powf(-1.0 / self.alpha)
    }

    /// Buckets a view count.
    pub fn bucket(&self, views: f64) -> PopularityBucket {
        // Thresholds chosen so the head is a small percentage of
        // uploads and the tail a majority (§2.2's description):
        // P(head) = 200^-1.1 ≈ 0.3%, P(tail) = 1 - 4^-1.1 ≈ 78%.
        if views >= self.scale * 200.0 {
            PopularityBucket::Head
        } else if views >= self.scale * 4.0 {
            PopularityBucket::Middle
        } else {
            PopularityBucket::Tail
        }
    }

    /// Treatment in the *accelerated* world: VCUs make VP9-at-upload
    /// affordable for everything (§4.5).
    pub fn treatment_with_vcu(&self, bucket: PopularityBucket) -> Treatment {
        Treatment {
            vp9: true,
            premium_analysis: bucket == PopularityBucket::Head,
        }
    }

    /// Treatment in the software-only world: VP9 reserved for the head.
    pub fn treatment_software_only(&self, bucket: PopularityBucket) -> Treatment {
        Treatment {
            vp9: bucket == PopularityBucket::Head,
            premium_analysis: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buckets(n: usize) -> (usize, usize, usize) {
        let m = PopularityModel::default();
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = (0usize, 0usize, 0usize);
        for _ in 0..n {
            match m.bucket(m.sample_views(&mut rng)) {
                PopularityBucket::Head => counts.0 += 1,
                PopularityBucket::Middle => counts.1 += 1,
                PopularityBucket::Tail => counts.2 += 1,
            }
        }
        counts
    }

    #[test]
    fn tail_is_the_majority() {
        let (head, _mid, tail) = buckets(20_000);
        assert!(tail > 10_000, "tail {tail}");
        assert!(head < 2_000, "head {head}");
        assert!(head > 0, "head must exist");
    }

    #[test]
    fn head_dominates_watch_time() {
        // §2.2: the head is a small fraction of videos but the majority
        // of watch time.
        let m = PopularityModel::default();
        let mut rng = Rng::seed_from_u64(3);
        let mut head_views = 0.0;
        let mut total_views = 0.0;
        let mut head_count = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let v = m.sample_views(&mut rng);
            total_views += v;
            if m.bucket(v) == PopularityBucket::Head {
                head_views += v;
                head_count += 1;
            }
        }
        assert!(head_count < n / 20, "head too big: {head_count}");
        // Asymptotically ~77%; finite-sample estimates fluctuate
        // because the share is dominated by the largest few samples.
        assert!(
            head_views / total_views > 0.4,
            "head watch share {}",
            head_views / total_views
        );
    }

    #[test]
    fn vcu_extends_vp9_to_everything() {
        let m = PopularityModel::default();
        for b in [
            PopularityBucket::Head,
            PopularityBucket::Middle,
            PopularityBucket::Tail,
        ] {
            assert!(m.treatment_with_vcu(b).vp9);
        }
        assert!(m.treatment_software_only(PopularityBucket::Head).vp9);
        assert!(!m.treatment_software_only(PopularityBucket::Tail).vp9);
    }
}
