//! A vbench-like benchmark suite.
//!
//! vbench (Lottarini et al., ASPLOS'18) is 15 videos spanning a 3-D
//! space of resolution, frame rate and entropy; the paper uses it for
//! all of §4.1. The suite is not redistributable, so we synthesize 15
//! clips with the same *axes*: each named clip mirrors the qualitative
//! content class visible in the paper's Fig. 7 legend (easy
//! `presentation`/`desktop` at the top, hard `holi` at the bottom).
//!
//! Resolutions are scaled down from vbench's (≤2160p) so that real
//! pixel-level encodes stay tractable; throughput experiments use the
//! chip timing models at full resolution instead, so nothing is lost.

use vcu_media::synth::{ContentClass, SynthSpec};
use vcu_media::{Resolution, Video};

/// One suite entry.
#[derive(Debug, Clone)]
pub struct VbenchClip {
    /// Clip name (mirrors the paper's Fig. 7 legend).
    pub name: &'static str,
    /// Generator specification.
    pub spec: SynthSpec,
}

impl VbenchClip {
    /// Generates the clip's frames.
    pub fn video(&self) -> Video {
        self.spec.generate()
    }
}

/// Suite sizing knob: quality experiments encode every pixel, so CI
/// runs use short clips while full runs use longer ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// ~1 second per clip at 144p–240p (CI-friendly).
    Quick,
    /// ~2-3 seconds per clip at up to 360p.
    Full,
}

/// Builds the 15-clip suite.
pub fn suite(scale: SuiteScale) -> Vec<VbenchClip> {
    let (frames_lo, frames_hi) = match scale {
        SuiteScale::Quick => (24, 36),
        SuiteScale::Full => (48, 72),
    };
    let res = |full: Resolution, quick: Resolution| match scale {
        SuiteScale::Quick => quick,
        SuiteScale::Full => full,
    };
    let r144 = res(Resolution::R240, Resolution::R144);
    let r240 = res(Resolution::R360, Resolution::R144);
    let r360 = res(Resolution::R360, Resolution::R240);

    let mk = |name: &'static str,
              r: Resolution,
              frames: usize,
              fps: f64,
              content: ContentClass,
              seed: u64| VbenchClip {
        name,
        spec: SynthSpec::new(r, frames, content, seed).with_fps(fps),
    };

    let screen = ContentClass::screen_content();
    let talk = ContentClass::talking_head();
    let ugc = ContentClass::ugc();
    let game = ContentClass::gaming();
    let wild = ContentClass::high_motion();

    vec![
        mk("presentation", r144, frames_lo, 24.0, screen, 101),
        mk("desktop", r144, frames_lo, 24.0, screen, 102),
        mk("bike", r240, frames_hi, 30.0, ugc, 103),
        mk("funny", r144, frames_lo, 30.0, talk, 104),
        mk("house", r240, frames_lo, 24.0, talk, 105),
        mk("cricket", r360, frames_hi, 30.0, wild, 106),
        mk("girl", r144, frames_lo, 24.0, talk, 107),
        mk("game_1", r240, frames_hi, 60.0, game, 108),
        mk("chicken", r240, frames_hi, 30.0, ugc, 109),
        mk("hall", r144, frames_lo, 24.0, talk, 110),
        mk("game_2", r360, frames_hi, 60.0, game, 111),
        mk("cat", r144, frames_lo, 30.0, ugc, 112),
        mk("landscape", r360, frames_lo, 24.0, ugc, 113),
        mk("game_3", r240, frames_hi, 60.0, game, 114),
        mk("holi", r360, frames_hi, 30.0, wild, 115),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fifteen_clips() {
        assert_eq!(suite(SuiteScale::Quick).len(), 15);
        assert_eq!(suite(SuiteScale::Full).len(), 15);
    }

    #[test]
    fn names_are_unique() {
        let s = suite(SuiteScale::Quick);
        let mut names: Vec<_> = s.iter().map(|c| c.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn axes_are_spread() {
        let s = suite(SuiteScale::Full);
        let fps: std::collections::BTreeSet<_> = s.iter().map(|c| c.spec.fps as u32).collect();
        assert!(fps.len() >= 3, "frame-rate axis collapsed: {fps:?}");
        let res: std::collections::BTreeSet<_> = s.iter().map(|c| c.spec.resolution).collect();
        assert!(res.len() >= 2, "resolution axis collapsed");
    }

    #[test]
    fn clips_generate() {
        let c = &suite(SuiteScale::Quick)[0];
        let v = c.video();
        assert_eq!(v.frames.len(), c.spec.frames);
    }

    #[test]
    fn deterministic_suite() {
        let a = suite(SuiteScale::Quick)[5].video();
        let b = suite(SuiteScale::Quick)[5].video();
        assert_eq!(a, b);
    }
}
