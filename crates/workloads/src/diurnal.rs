//! Diurnal demand curves: time-of-day load shaping for multi-region
//! simulation.
//!
//! A region's upload demand follows the waking hours of its user
//! population, so regions in different timezones peak at different
//! UTC hours. This module models that as a raised cosine over the sim
//! clock (UTC by convention) and generates nonhomogeneous-Poisson
//! arrivals by thinning (Lewis & Shedler): draw candidates at the peak
//! rate, keep each with probability `rate(t) / peak`. Everything is
//! seeded, so a region's arrival stream is a pure function of
//! `(curve, window, rng state)` — the property the byte-identical
//! region campaign rests on.

use vcu_rng::Rng;

/// Seconds per simulated day.
pub const DAY_S: f64 = 86_400.0;

/// A raised-cosine diurnal rate curve:
///
/// `rate(t) = mean * (1 + amplitude * cos(2π (t − peak_s) / period_s))`
///
/// The curve averages to `mean_rate_per_s` over a full period and
/// swings between `mean * (1 − amplitude)` and `mean * (1 + amplitude)`,
/// peaking at `peak_hour` on the sim clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Mean arrival rate over a full day, requests/second.
    pub mean_rate_per_s: f64,
    /// Peak-to-mean swing in `[0, 1]`: 0 = flat (homogeneous Poisson),
    /// 1 = the trough touches zero.
    pub amplitude: f64,
    /// Hour of peak demand on the sim clock, `[0, 24)`. Shifting this
    /// per region is what phase-shifts the regions against each other.
    pub peak_hour: f64,
    /// Curve period, seconds (a day unless compressed for tests).
    pub period_s: f64,
}

impl DiurnalCurve {
    /// A day-period curve peaking at `peak_hour` sim time.
    pub fn new(mean_rate_per_s: f64, amplitude: f64, peak_hour: f64) -> Self {
        assert!(mean_rate_per_s >= 0.0, "rate must be non-negative");
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "amplitude must be in [0, 1] (got {amplitude})"
        );
        DiurnalCurve {
            mean_rate_per_s,
            amplitude,
            peak_hour: peak_hour.rem_euclid(24.0),
            period_s: DAY_S,
        }
    }

    /// Instantaneous arrival rate at sim time `t`, requests/second.
    pub fn rate_at(&self, t: f64) -> f64 {
        let peak_s = self.peak_hour / 24.0 * self.period_s;
        let phase = (t - peak_s) / self.period_s * std::f64::consts::TAU;
        self.mean_rate_per_s * (1.0 + self.amplitude * phase.cos())
    }

    /// Highest rate the curve reaches (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        self.mean_rate_per_s * (1.0 + self.amplitude)
    }

    /// Expected arrivals in `[t0, t1)` — the closed-form integral of
    /// `rate_at`, for sizing fleets against offered load.
    pub fn expected_arrivals(&self, t0: f64, t1: f64) -> f64 {
        let peak_s = self.peak_hour / 24.0 * self.period_s;
        let sin = |t: f64| ((t - peak_s) / self.period_s * std::f64::consts::TAU).sin();
        self.mean_rate_per_s
            * ((t1 - t0)
                + self.amplitude * self.period_s / std::f64::consts::TAU * (sin(t1) - sin(t0)))
    }

    /// Arrival times in `[t0, t1)` by thinning: candidates arrive as a
    /// homogeneous Poisson process at [`DiurnalCurve::peak_rate`]; each
    /// survives with probability `rate(t) / peak`. Output is sorted
    /// and strictly inside the window. Deterministic in the RNG state,
    /// and windows chain: generating `[a, b)` then `[b, c)` from the
    /// same RNG draws the same distribution as `[a, c)` in one call.
    pub fn arrivals_in(&self, t0: f64, t1: f64, rng: &mut Rng) -> Vec<f64> {
        let peak = self.peak_rate();
        if peak <= 0.0 || t1 <= t0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut t = t0;
        loop {
            t += rng.exponential(peak);
            if t >= t1 {
                break;
            }
            if self.amplitude == 0.0 || rng.gen_range(0.0..1.0) < self.rate_at(t) / peak {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_peaks_at_peak_hour_and_averages_to_mean() {
        let c = DiurnalCurve::new(10.0, 0.6, 20.0);
        assert!((c.rate_at(20.0 / 24.0 * DAY_S) - 16.0).abs() < 1e-9);
        assert!((c.rate_at(8.0 / 24.0 * DAY_S) - 4.0).abs() < 1e-9);
        // Mean over a full day is the configured mean.
        let mean = c.expected_arrivals(0.0, DAY_S) / DAY_S;
        assert!((mean - 10.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn phase_shift_moves_the_peak() {
        let east = DiurnalCurve::new(10.0, 0.5, 4.0);
        let west = DiurnalCurve::new(10.0, 0.5, 12.0);
        let noon = 12.0 / 24.0 * DAY_S;
        assert!(west.rate_at(noon) > east.rate_at(noon));
        // Anti-phased curves sum to a flatter total: at west's peak,
        // east is 8 h past its own and already declining.
        assert!(east.rate_at(noon) < east.peak_rate() * 0.8);
    }

    #[test]
    fn thinning_tracks_the_expected_count() {
        let c = DiurnalCurve::new(5.0, 0.8, 0.0);
        let mut rng = Rng::seed_from_u64(7);
        // Peak window (high rate) vs trough window (low rate).
        let peak_window = c.arrivals_in(0.0, 3_600.0, &mut rng).len() as f64;
        let trough_window = c
            .arrivals_in(DAY_S * 0.45, DAY_S * 0.45 + 3_600.0, &mut rng)
            .len() as f64;
        let exp_peak = c.expected_arrivals(0.0, 3_600.0);
        assert!(
            (peak_window - exp_peak).abs() < exp_peak * 0.15,
            "peak window: {peak_window} vs expected {exp_peak}"
        );
        assert!(
            peak_window > trough_window * 2.0,
            "diurnal swing must show: {peak_window} vs {trough_window}"
        );
    }

    #[test]
    fn arrivals_are_sorted_in_window_and_deterministic() {
        let c = DiurnalCurve::new(3.0, 0.4, 9.0);
        let gen = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            c.arrivals_in(100.0, 5_000.0, &mut rng)
        };
        let a = gen(1);
        assert_eq!(a, gen(1), "same seed, same stream");
        assert_ne!(a, gen(2), "seed steers the stream");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(a.iter().all(|&t| (100.0..5_000.0).contains(&t)));
    }

    #[test]
    fn zero_amplitude_is_plain_poisson() {
        let flat = DiurnalCurve::new(2.0, 0.0, 0.0);
        let mut rng = Rng::seed_from_u64(3);
        let n = flat.arrivals_in(0.0, 10_000.0, &mut rng).len() as f64;
        assert!((n - 20_000.0).abs() < 600.0, "homogeneous rate: {n}");
        assert_eq!(flat.rate_at(0.0), flat.rate_at(43_200.0));
    }
}
